//! Validated configuration surface for [`ClusterConfig`] (DESIGN.md §17).
//!
//! Historically a cluster was configured by struct-literal update over
//! [`ClusterConfig::default`], with a handful of `assert!`s firing deep in
//! [`crate::SimCluster::new`]. That worked while every field was
//! independently sensible, but continuous rollups introduced *cross-field*
//! invariants (rollup levels against the block geometry, retention against
//! the live set) that are much better rejected at construction time with a
//! typed error than mid-boot with a panic.
//!
//! The builder is the front door: `ClusterConfig::builder()` → typed
//! setters → [`ClusterConfigBuilder::build`], which runs
//! [`ClusterConfig::check`] and returns a [`ConfigError`] naming the first
//! violated invariant class. [`RollupPolicy`] has private fields, so a
//! rollup configuration can *only* enter through its validated
//! constructors — there is no way to hand the cluster an unchecked policy.
//! Plain struct literals over `Default` keep compiling (a deprecation
//! window, not a break); `SimCluster::new` re-runs the same `check()` as a
//! backstop so an unvalidated literal still fails loudly.

use crate::cluster::{ClusterConfig, Mode};
use stash_data::GeneratorConfig;
use stash_dfs::DiskModel;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange, MAX_GEOHASH_LEN};
use stash_model::Level;
use stash_net::NetConfig;
use std::time::Duration;

/// One rejected invariant class of a cluster configuration. Each variant is
/// a *class* — the carried string names the specific field and value — so
/// callers can branch on what kind of mistake they made (and the tests can
/// pin that every class is actually reachable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Node count or mode-level shape is unusable (zero nodes, …).
    Topology(String),
    /// A worker tier has no threads.
    Workers(String),
    /// Block/partition geometry is inconsistent (prefix longer than the
    /// block, block longer than a geohash, …).
    Partitioning(String),
    /// Dataset shape is unusable (zero attributes, …).
    Dataset(String),
    /// The live-ingest block set disagrees with the block geometry or the
    /// data domain.
    LiveSet(String),
    /// The embedded [`stash_core::StashConfig`] failed its own checks.
    Stash(String),
    /// The rollup policy disagrees with the cluster it is attached to.
    Rollup(String),
    /// Scatter batching parameters are degenerate.
    Scatter(String),
    /// A timeout or backoff is zero.
    Timing(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Topology(m) => write!(f, "topology: {m}"),
            ConfigError::Workers(m) => write!(f, "workers: {m}"),
            ConfigError::Partitioning(m) => write!(f, "partitioning: {m}"),
            ConfigError::Dataset(m) => write!(f, "dataset: {m}"),
            ConfigError::LiveSet(m) => write!(f, "live set: {m}"),
            ConfigError::Stash(m) => write!(f, "stash: {m}"),
            ConfigError::Rollup(m) => write!(f, "rollup: {m}"),
            ConfigError::Scatter(m) => write!(f, "scatter: {m}"),
            ConfigError::Timing(m) => write!(f, "timing: {m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Continuous-rollup policy: which coarse levels to materialize, and
/// optionally a retention horizon below which raw blocks may be dropped
/// (the rollup becomes the authoritative answer there — DESIGN.md §17).
///
/// Fields are private: the only way to obtain an enabled policy is
/// [`RollupPolicy::new`] / [`RollupPolicy::with_retention`], which validate
/// what they can context-free; the cross-field checks against block
/// geometry and mode run in [`ClusterConfig::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupPolicy {
    /// Sorted, deduplicated rollup levels; empty means disabled.
    levels: Vec<Level>,
    /// Absolute epoch-seconds cutoff: raw blocks whose day ends at or
    /// before this (and before the watermark) are retirable.
    retention_horizon: Option<i64>,
    /// Actually drop retired blocks from the store (`false` keeps raw
    /// data and only *measures* what retention would free).
    downsample: bool,
}

impl Default for RollupPolicy {
    fn default() -> Self {
        RollupPolicy::disabled()
    }
}

impl RollupPolicy {
    /// No rollups (the pre-§17 behavior). `Default` resolves here, which is
    /// what keeps `..ClusterConfig::default()` literals compiling.
    pub fn disabled() -> Self {
        RollupPolicy {
            levels: Vec::new(),
            retention_horizon: None,
            downsample: false,
        }
    }

    /// A rollup policy maintaining Cells at `levels`. Rejects an empty
    /// level set and hour-granularity levels (an hourly "rollup" is as
    /// fine as the raw stream — nothing is rolled up).
    pub fn new(levels: Vec<Level>) -> Result<Self, ConfigError> {
        if levels.is_empty() {
            return Err(ConfigError::Rollup(
                "rollup level set must not be empty (use RollupPolicy::disabled())".into(),
            ));
        }
        if let Some(l) = levels
            .iter()
            .find(|l| l.temporal_res() == TemporalRes::Hour)
        {
            return Err(ConfigError::Rollup(format!(
                "level {l} is hour-granular; rollup levels must be Day or coarser"
            )));
        }
        let mut levels = levels;
        levels.sort_unstable();
        levels.dedup();
        Ok(RollupPolicy {
            levels,
            retention_horizon: None,
            downsample: false,
        })
    }

    /// Enable retention: raw blocks whose day ends at or before
    /// `horizon_epoch_secs` (and before the rollup watermark) become
    /// retirable; with `downsample` they are actually dropped by
    /// [`crate::SimCluster::apply_retention`] and the rollup answers for
    /// them. Errors on a disabled policy — retention without rollup levels
    /// would drop data nothing can answer for.
    pub fn with_retention(
        mut self,
        horizon_epoch_secs: i64,
        downsample: bool,
    ) -> Result<Self, ConfigError> {
        if self.levels.is_empty() {
            return Err(ConfigError::Rollup(
                "retention requires rollup levels: dropped blocks must have an authority".into(),
            ));
        }
        self.retention_horizon = Some(horizon_epoch_secs);
        self.downsample = downsample;
        Ok(self)
    }

    pub fn is_enabled(&self) -> bool {
        !self.levels.is_empty()
    }

    /// Sorted, deduplicated rollup levels (empty when disabled).
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    pub fn retention_horizon(&self) -> Option<i64> {
        self.retention_horizon
    }

    pub fn downsample(&self) -> bool {
        self.downsample
    }
}

impl ClusterConfig {
    /// Start a validated configuration (the front door since DESIGN.md
    /// §17). Setters are typed; [`ClusterConfigBuilder::build`] rejects
    /// inconsistent configurations with a [`ConfigError`].
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: ClusterConfig::default(),
        }
    }

    /// Check every construction invariant, returning the first violation.
    /// [`crate::SimCluster::new`] runs this as a backstop, so configurations
    /// assembled by struct literal (the deprecation window) are still
    /// rejected — just with a panic instead of a `Result`.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.n_nodes == 0 {
            return Err(ConfigError::Topology(
                "cluster needs at least one node".into(),
            ));
        }
        if self.coord_workers == 0 || self.service_workers == 0 || self.fetch_workers == 0 {
            return Err(ConfigError::Workers(
                "every worker tier needs at least one thread".into(),
            ));
        }
        if self.block_len == 0 || self.block_len > MAX_GEOHASH_LEN {
            return Err(ConfigError::Partitioning(format!(
                "block_len {} not in 1..={MAX_GEOHASH_LEN}",
                self.block_len
            )));
        }
        if self.partition_prefix_len == 0 || self.partition_prefix_len > self.block_len {
            return Err(ConfigError::Partitioning(format!(
                "partition_prefix_len {} not in 1..=block_len ({})",
                self.partition_prefix_len, self.block_len
            )));
        }
        if self.n_attrs == 0 {
            return Err(ConfigError::Dataset(
                "schema needs at least one attribute".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.live_base_fraction) {
            return Err(ConfigError::LiveSet(format!(
                "live_base_fraction {} not within [0, 1]",
                self.live_base_fraction
            )));
        }
        for &(geohash, day) in &self.live_blocks {
            if geohash.len() != self.block_len {
                return Err(ConfigError::LiveSet(format!(
                    "live block {geohash} has length {}, expected block_len {}",
                    geohash.len(),
                    self.block_len
                )));
            }
            if day.res != TemporalRes::Day {
                return Err(ConfigError::LiveSet(format!(
                    "live block {geohash} keyed by a {:?} bin; blocks are day-granular",
                    day.res
                )));
            }
            let r = day.range();
            if r.start < self.data_time.start || r.end > self.data_time.end {
                return Err(ConfigError::LiveSet(format!(
                    "live block {geohash} day [{}, {}) outside the data domain [{}, {})",
                    r.start, r.end, self.data_time.start, self.data_time.end
                )));
            }
        }
        self.stash.check().map_err(ConfigError::Stash)?;
        if self.rollup.is_enabled() {
            if self.mode != Mode::Stash {
                return Err(ConfigError::Rollup(
                    "rollups require Mode::Stash (Basic mode always scans raw blocks)".into(),
                ));
            }
            for l in self.rollup.levels() {
                if l.spatial_res() > self.block_len {
                    return Err(ConfigError::Rollup(format!(
                        "level {l} is spatially finer than the block geometry (block_len {}); \
                         rollup levels must be at or coarser than block granularity",
                        self.block_len
                    )));
                }
            }
            if let Some(h) = self.rollup.retention_horizon() {
                if h <= self.data_time.start {
                    return Err(ConfigError::Rollup(format!(
                        "retention horizon {h} at or before the data domain start {}; \
                         nothing would ever be retained",
                        self.data_time.start
                    )));
                }
            }
        }
        if self.scatter_fragment_keys == 0 {
            return Err(ConfigError::Scatter(
                "scatter_fragment_keys must be at least 1".into(),
            ));
        }
        if self.sub_rpc_timeout.is_zero()
            || self.distress_timeout.is_zero()
            || self.client_timeout.is_zero()
        {
            return Err(ConfigError::Timing("rpc timeouts must be positive".into()));
        }
        Ok(())
    }
}

/// Builder over [`ClusterConfig`]: typed setters, cross-field validation in
/// [`ClusterConfigBuilder::build`]. Setters are infallible — all checking
/// happens once, at `build`, where every field is known.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, $name: $ty) -> Self {
            self.config.$name = $name;
            self
        }
    };
}

impl ClusterConfigBuilder {
    /// The paper's deployment shape (§VIII-A) scaled to a workstation:
    /// more nodes and workers than the laptop default, full replication.
    pub fn paper_scale() -> Self {
        ClusterConfig::builder()
            .n_nodes(16)
            .coord_workers(3)
            .service_workers(3)
            .fetch_workers(2)
    }

    /// A minimal fast-boot shape for smoke tests and examples: few nodes,
    /// free disk, low fabric latency.
    pub fn smoke() -> Self {
        ClusterConfig::builder()
            .n_nodes(4)
            .coord_workers(2)
            .service_workers(2)
            .fetch_workers(2)
            .disk(DiskModel::free())
            .net(NetConfig {
                base_latency: Duration::from_micros(20),
                ..NetConfig::default()
            })
    }

    setter!(n_nodes: usize);
    setter!(coord_workers: usize);
    setter!(service_workers: usize);
    setter!(fetch_workers: usize);
    setter!(mode: Mode);
    setter!(enable_replication: bool);
    setter!(stash: stash_core::StashConfig);
    setter!(net: NetConfig);
    setter!(disk: DiskModel);
    setter!(block_len: u8);
    setter!(partition_prefix_len: u8);
    setter!(data_bbox: BBox);
    setter!(data_time: TimeRange);
    setter!(generator: GeneratorConfig);
    setter!(n_attrs: usize);
    setter!(scan_cost_per_obs: Duration);
    setter!(cell_service_cost: Duration);
    setter!(sub_rpc_timeout: Duration);
    setter!(distress_timeout: Duration);
    setter!(client_timeout: Duration);
    setter!(sub_rpc_retries: u32);
    setter!(retry_backoff: Duration);
    setter!(client_retries: u32);
    setter!(live_blocks: Vec<(Geohash, TimeBin)>);
    setter!(live_base_fraction: f64);
    setter!(ingest_patch: bool);
    setter!(batch_scatter: bool);
    setter!(scatter_fragment_keys: usize);
    setter!(
        /// Continuous-rollup policy; [`RollupPolicy`]'s private fields mean
        /// only validated policies can reach this setter.
        rollup: RollupPolicy
    );

    /// Arbitrary transformation escape hatch, for call sites that adjust a
    /// nested field the setters don't name (e.g. one generator knob).
    pub fn tweak(mut self, f: impl FnOnce(&mut ClusterConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        self.config.check()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use std::str::FromStr;

    fn day(y: i64, m: u32, d: u32) -> TimeBin {
        TimeBin::containing(TemporalRes::Day, epoch_seconds(y, m, d, 0, 0, 0))
    }

    fn rollup_levels() -> Vec<Level> {
        vec![
            Level::of(2, TemporalRes::Day).unwrap(),
            Level::of(1, TemporalRes::Month).unwrap(),
        ]
    }

    #[test]
    fn default_and_presets_build_clean() {
        assert_eq!(ClusterConfig::default().check(), Ok(()));
        ClusterConfigBuilder::paper_scale().build().unwrap();
        ClusterConfigBuilder::smoke().build().unwrap();
    }

    #[test]
    fn builder_rejects_distinct_invalid_classes() {
        // Each case is a different ConfigError variant — the issue's "at
        // least five distinct invalid-config classes" bar, pinned.
        let topology = ClusterConfig::builder().n_nodes(0).build().unwrap_err();
        assert!(matches!(topology, ConfigError::Topology(_)), "{topology}");

        let workers = ClusterConfig::builder()
            .service_workers(0)
            .build()
            .unwrap_err();
        assert!(matches!(workers, ConfigError::Workers(_)), "{workers}");
        assert!(workers.to_string().contains("worker tier"));

        let partitioning = ClusterConfig::builder()
            .partition_prefix_len(5)
            .block_len(3)
            .build()
            .unwrap_err();
        assert!(
            matches!(partitioning, ConfigError::Partitioning(_)),
            "{partitioning}"
        );

        let dataset = ClusterConfig::builder().n_attrs(0).build().unwrap_err();
        assert!(matches!(dataset, ConfigError::Dataset(_)), "{dataset}");

        let live = ClusterConfig::builder()
            .live_blocks(vec![(Geohash::from_str("9q").unwrap(), day(2015, 2, 2))])
            .build()
            .unwrap_err();
        assert!(matches!(live, ConfigError::LiveSet(_)), "{live}");

        let stash = ClusterConfig::builder()
            .tweak(|c| c.stash.safe_fraction = 2.0)
            .build()
            .unwrap_err();
        assert!(matches!(stash, ConfigError::Stash(_)), "{stash}");

        let scatter = ClusterConfig::builder()
            .scatter_fragment_keys(0)
            .build()
            .unwrap_err();
        assert!(matches!(scatter, ConfigError::Scatter(_)), "{scatter}");

        let timing = ClusterConfig::builder()
            .client_timeout(Duration::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(timing, ConfigError::Timing(_)), "{timing}");
    }

    #[test]
    fn rollup_policy_constructors_validate() {
        assert!(!RollupPolicy::disabled().is_enabled());
        assert!(RollupPolicy::new(Vec::new()).is_err());
        let hourly = Level::of(3, TemporalRes::Hour).unwrap();
        assert!(RollupPolicy::new(vec![hourly]).is_err());
        assert!(RollupPolicy::disabled()
            .with_retention(epoch_seconds(2015, 6, 1, 0, 0, 0), true)
            .is_err());

        let p = RollupPolicy::new(rollup_levels()).unwrap();
        assert!(p.is_enabled());
        assert_eq!(p.levels().len(), 2);
        assert!(p.retention_horizon().is_none());
        let p = p
            .with_retention(epoch_seconds(2015, 6, 1, 0, 0, 0), true)
            .unwrap();
        assert!(p.downsample());
        assert!(p.retention_horizon().is_some());
    }

    #[test]
    fn rollup_levels_are_sorted_and_deduped() {
        let month = Level::of(1, TemporalRes::Month).unwrap();
        let d2 = Level::of(2, TemporalRes::Day).unwrap();
        let p = RollupPolicy::new(vec![month, d2, month]).unwrap();
        let mut expect = [month, d2];
        expect.sort_unstable();
        assert_eq!(p.levels(), &expect[..]);
    }

    #[test]
    fn rollup_cross_field_checks_run_at_build() {
        let policy = RollupPolicy::new(rollup_levels()).unwrap();
        // Basic mode never consults rollups — configuring both is a
        // contradiction, rejected.
        let basic = ClusterConfig::builder()
            .mode(Mode::Basic)
            .rollup(policy.clone())
            .build()
            .unwrap_err();
        assert!(matches!(basic, ConfigError::Rollup(_)), "{basic}");

        // A level spatially finer than the block is not a rollup.
        let fine = RollupPolicy::new(vec![Level::of(5, TemporalRes::Day).unwrap()]).unwrap();
        let err = ClusterConfig::builder()
            .block_len(3)
            .rollup(fine)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Rollup(_)), "{err}");

        // A horizon before any data exists retains nothing — reject it.
        let hopeless = policy
            .clone()
            .with_retention(epoch_seconds(2014, 1, 1, 0, 0, 0), true)
            .unwrap();
        let err = ClusterConfig::builder()
            .rollup(hopeless)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Rollup(_)), "{err}");

        // And the well-formed case builds.
        let good = policy
            .with_retention(epoch_seconds(2015, 6, 1, 0, 0, 0), true)
            .unwrap();
        ClusterConfig::builder().rollup(good).build().unwrap();
    }
}
