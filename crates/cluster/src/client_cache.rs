//! The paper's proposed future work (§IX-A), implemented:
//!
//! 1. **A smaller-capacity STASH graph at the front-end** — "can greatly
//!    reduce latency in case users tend to browse a narrow spatiotemporal
//!    region, thus reducing the number of queries needed to be evaluated
//!    at the back-end." [`CachingClient`] keeps a client-side
//!    [`StashGraph`]; fully-cached interactions never touch the cluster,
//!    and partially-cached ones ship only the *missing* Cells' subqueries.
//! 2. **Prefetching from a predicted access pattern** — "constructing
//!    prefetching queries that augment regions the model predicts would be
//!    of interest." [`Prefetcher`] is a momentum predictor over the user's
//!    pan trajectory: after each interaction it warms the viewport the
//!    user is most likely to request next, in the background.

use crate::client::{ClientError, ClientReply, ClusterClient};
use crate::protocol::{ClusterError, Msg};
use stash_core::{LogicalClock, StashConfig, StashGraph};
use stash_dfs::Partitioner;
use stash_model::{AggQuery, Cell, CellKey, QueryResult};
use stash_net::{NodeId, Router, RpcTable};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A front-end with its own STASH graph and an optional prefetcher.
pub struct CachingClient {
    inner: ClusterClient,
    router: Router<Msg>,
    gateway: NodeId,
    sub_rpc: Arc<RpcTable<ClientReply>>,
    partitioner: Partitioner,
    graph: Arc<StashGraph>,
    clock: Arc<LogicalClock>,
    timeout: Duration,
    /// Dataset attribute count, for caching empty regions with the right
    /// summary width.
    n_attrs: usize,
    /// Local-graph statistics: interactions fully served client-side.
    local_only: AtomicU64,
    /// Interactions that needed at least one back-end subquery.
    remote: AtomicU64,
}

impl CachingClient {
    /// Wrap a cluster client with a front-end graph of `max_cells` capacity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        inner: ClusterClient,
        router: Router<Msg>,
        gateway: NodeId,
        sub_rpc: Arc<RpcTable<ClientReply>>,
        partitioner: Partitioner,
        max_cells: usize,
        timeout: Duration,
        n_attrs: usize,
    ) -> Self {
        let clock = Arc::new(LogicalClock::new());
        let config = StashConfig {
            max_cells,
            ..StashConfig::default()
        };
        CachingClient {
            inner,
            router,
            gateway,
            sub_rpc,
            partitioner,
            graph: Arc::new(StashGraph::new(config, Arc::clone(&clock))),
            clock,
            timeout,
            n_attrs,
            local_only: AtomicU64::new(0),
            remote: AtomicU64::new(0),
        }
    }

    /// The wrapped plain client (bypasses the front-end graph).
    pub fn raw(&self) -> &ClusterClient {
        &self.inner
    }

    /// Cells held client-side.
    pub fn cached_cells(&self) -> usize {
        self.graph.len()
    }

    /// `(fully-local interactions, interactions that hit the back-end)`.
    pub fn interaction_stats(&self) -> (u64, u64) {
        (
            self.local_only.load(Ordering::Relaxed),
            self.remote.load(Ordering::Relaxed),
        )
    }

    /// Evaluate a query front-end-first: local hits and derivations cost no
    /// network at all; only missing Cells become back-end subqueries.
    pub fn query(&self, query: &AggQuery) -> Result<QueryResult, ClientError> {
        self.clock.advance();
        let keys = query
            .target_keys(200_000)
            .map_err(|e| ClientError::Remote(ClusterError::BadQuery(e.to_string())))?;
        if keys.is_empty() {
            return Ok(QueryResult::default());
        }
        let (mut cells, candidates) = self.graph.get_many(&keys);
        let local_hits = cells.len();
        let mut derived = 0usize;
        let mut missing = Vec::with_capacity(candidates.len());
        for key in candidates {
            if let Some(cell) = self.graph.try_derive(&key) {
                derived += 1;
                cells.push(cell);
            } else {
                missing.push(key);
            }
        }

        let mut fetched = 0usize;
        if missing.is_empty() {
            self.local_only.fetch_add(1, Ordering::Relaxed);
        } else {
            self.remote.fetch_add(1, Ordering::Relaxed);
            let remote_cells = self.fetch_remote(&missing)?;
            fetched = remote_cells.len();
            self.graph.insert_many(remote_cells.iter().cloned());
            cells.extend(remote_cells);
        }
        self.graph.touch_region(&keys);

        cells.retain(|c| !c.summary.is_empty());
        cells.sort_by_key(|c| c.key);
        Ok(QueryResult {
            cells,
            cache_hits: local_hits,
            derived_hits: derived,
            misses: fetched,
            rollup_hits: 0,
        })
    }

    /// Ship missing keys straight to their owner nodes (the client knows
    /// the zero-hop partitioner) and merge the answers.
    fn fetch_remote(&self, missing: &[CellKey]) -> Result<Vec<Cell>, ClientError> {
        let mut by_owner: BTreeMap<usize, Vec<CellKey>> = BTreeMap::new();
        for &k in missing {
            by_owner
                .entry(self.partitioner.owner_of_cell(&k))
                .or_default()
                .push(k);
        }
        let mut waits = Vec::with_capacity(by_owner.len());
        for (owner, group) in by_owner {
            let (rpc, rx) = self.sub_rpc.register();
            let msg = Msg::SubQuery {
                rpc,
                reply_to: self.gateway,
                keys: group,
                allow_reroute: true,
                via_guest: false,
            };
            let bytes = msg.wire_size();
            if !self.router.send(self.gateway, NodeId(owner), msg, bytes) {
                self.sub_rpc.cancel(rpc);
                return Err(ClientError::Disconnected);
            }
            waits.push((rpc, rx));
        }
        let mut cells = Vec::with_capacity(missing.len());
        let mut fetched_keys = std::collections::HashSet::with_capacity(missing.len());
        for (rpc, rx) in waits {
            match self.sub_rpc.wait(rpc, &rx, self.timeout) {
                Ok((Ok(part), _trace)) => {
                    for c in part.cells {
                        fetched_keys.insert(c.key);
                        cells.push(c);
                    }
                }
                Ok((Err(e), _trace)) => return Err(ClientError::Remote(e)),
                Err(stash_net::rpc::RpcError::Timeout) => return Err(ClientError::Timeout),
                Err(stash_net::rpc::RpcError::Canceled) => return Err(ClientError::Disconnected),
            }
        }
        // Empty regions come back as no cell; cache their emptiness too so
        // panning over ocean stays local.
        for &k in missing {
            if !fetched_keys.contains(&k) {
                cells.push(Cell::empty(k, self.n_attrs));
            }
        }
        Ok(cells)
    }
}

/// Momentum-based viewport predictor (§IX-A's "trained model", scaled to
/// its simplest useful form): if the user panned in some direction, the
/// most likely next request is one more pan the same way.
#[derive(Debug, Default)]
pub struct Prefetcher {
    last_bbox: Option<stash_geo::BBox>,
}

impl Prefetcher {
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe an interaction and predict the next viewport, if the
    /// trajectory suggests one.
    pub fn observe_and_predict(&mut self, query: &AggQuery) -> Option<AggQuery> {
        let prev = self.last_bbox.replace(query.bbox);
        let prev = prev?;
        let b = query.bbox;
        // Same extent ⇒ a pan; the delta is the momentum vector.
        if (prev.lat_extent() - b.lat_extent()).abs() > 1e-9
            || (prev.lon_extent() - b.lon_extent()).abs() > 1e-9
        {
            return None; // zoom or dice: no directional momentum
        }
        let dlat = b.min_lat - prev.min_lat;
        let dlon = b.min_lon - prev.min_lon;
        if dlat.abs() < 1e-12 && dlon.abs() < 1e-12 {
            return None; // repeat of the same view
        }
        let mut next = query.clone();
        next.bbox = b.pan(dlat, dlon);
        (next.bbox != b).then_some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::{BBox, TemporalRes, TimeRange};

    fn q(lat: f64, lon: f64) -> AggQuery {
        AggQuery::new(
            BBox::from_corner_extent(lat, lon, 1.0, 2.0),
            TimeRange::whole_day(2015, 2, 2),
            4,
            TemporalRes::Day,
        )
    }

    #[test]
    fn prefetcher_extrapolates_pans() {
        let mut p = Prefetcher::new();
        assert!(
            p.observe_and_predict(&q(40.0, -100.0)).is_none(),
            "no history yet"
        );
        let pred = p.observe_and_predict(&q(40.5, -100.0)).expect("momentum");
        // Panned north by 0.5: prediction continues north.
        assert!((pred.bbox.min_lat - 41.0).abs() < 1e-9);
        assert!((pred.bbox.min_lon + 100.0).abs() < 1e-9);
    }

    #[test]
    fn prefetcher_ignores_zooms_and_repeats() {
        let mut p = Prefetcher::new();
        p.observe_and_predict(&q(40.0, -100.0));
        // Same view again: no prediction.
        assert!(p.observe_and_predict(&q(40.0, -100.0)).is_none());
        // A dice (different extent): no prediction.
        let mut diced = q(40.0, -100.0);
        diced.bbox = diced.bbox.scale(0.5);
        assert!(p.observe_and_predict(&diced).is_none());
    }

    #[test]
    fn prefetcher_momentum_follows_direction_changes() {
        let mut p = Prefetcher::new();
        p.observe_and_predict(&q(40.0, -100.0));
        p.observe_and_predict(&q(40.5, -100.0)); // north
        let east = p
            .observe_and_predict(&q(40.5, -99.0))
            .expect("east momentum");
        assert!((east.bbox.min_lon + 98.0).abs() < 1e-9, "continues east");
        assert!((east.bbox.min_lat - 40.5).abs() < 1e-9);
    }
}
