//! Cluster-side ingest sink: ships append batches from the gateway to
//! block owners, with retries and replica-chain failover.
//!
//! This is the [`AppendSink`] a [`crate::SimCluster`] hands to the
//! `stash-ingest` pump. One `append` call blocks until some live node has
//! (a) durably applied the batch to the shared storage and (b) received
//! invalidation acks from every live peer — the positive [`Msg::AppendAck`]
//! is only sent after both. Because storage is replicated (one shared
//! source behind every node) and appends are seq-idempotent, failing over
//! to *any* node is safe: a retried batch that already landed is a
//! `Duplicate`, which re-broadcasts invalidations and acks positively.

use crate::protocol::Msg;
use stash_dfs::{BlockKey, Partitioner};
use stash_ingest::{AppendSink, IngestError};
use stash_model::Observation;
use stash_net::rpc::RpcError;
use stash_net::{NodeId, Router, RpcTable};
use std::sync::Arc;
use std::time::Duration;

/// Producer-side handle for streaming batches into a running cluster.
pub struct IngestClient {
    router: Router<Msg>,
    gateway: NodeId,
    rpc: Arc<RpcTable<bool>>,
    partitioner: Partitioner,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
}

impl IngestClient {
    pub(crate) fn new(
        router: Router<Msg>,
        gateway: NodeId,
        rpc: Arc<RpcTable<bool>>,
        partitioner: Partitioner,
        timeout: Duration,
        retries: u32,
        backoff: Duration,
    ) -> Self {
        IngestClient {
            router,
            gateway,
            rpc,
            partitioner,
            timeout,
            retries,
            backoff,
        }
    }
}

impl AppendSink for IngestClient {
    fn owner_of(&self, block: BlockKey) -> usize {
        self.partitioner.owner(block.geohash)
    }

    /// Send the batch to the block's owner; on repeated timeouts or a
    /// refused send (owner crashed) walk the replica chain — any node can
    /// apply against the shared storage. Negative acks (rejected batch,
    /// incomplete invalidation round) are retried in place: they are
    /// usually transient fault-plan weather, and `Duplicate` idempotency
    /// makes re-sends harmless.
    fn append(
        &self,
        block: BlockKey,
        seq: u64,
        rows: &[Observation],
        last: bool,
    ) -> Result<(), IngestError> {
        let n_nodes = self.partitioner.n_nodes();
        let mut exclude: Vec<usize> = Vec::new();
        loop {
            let target = self.partitioner.owner_excluding(block.geohash, &exclude);
            for attempt in 0..=self.retries {
                if attempt > 0 {
                    std::thread::sleep(self.backoff.saturating_mul(1 << (attempt - 1).min(4)));
                }
                let (rpc, rx) = self.rpc.register();
                let msg = Msg::AppendBatch {
                    rpc,
                    reply_to: self.gateway,
                    block,
                    seq,
                    rows: rows.to_vec(),
                    last,
                };
                let bytes = msg.wire_size();
                if !self.router.send(self.gateway, NodeId(target), msg, bytes) {
                    self.rpc.cancel(rpc);
                    break; // target crashed: fail over now
                }
                match self.rpc.wait(rpc, &rx, self.timeout) {
                    Ok(true) => return Ok(()),
                    Ok(false) | Err(RpcError::Timeout) => {} // retry / fail over
                    Err(RpcError::Canceled) => {
                        return Err(IngestError("cluster disconnected".into()))
                    }
                }
            }
            exclude.push(target);
            if exclude.len() >= n_nodes {
                return Err(IngestError(format!(
                    "no node accepted batch {seq} of block {}/{}",
                    block.geohash, block.day
                )));
            }
        }
    }
}
