//! Cluster assembly: configuration, node spawning, stats, teardown.

use crate::client::{run_gateway, ClientReply, ClusterClient};
use crate::config::RollupPolicy;
use crate::ingest::IngestClient;
use crate::node::{NodeCtx, WorkTiers};
use crate::protocol::Msg;
use crate::source::{GenBlockSource, LiveSource};
use crossbeam::channel::unbounded;
use stash_core::LogicalClock;
use stash_core::StashConfig;
use stash_data::{GeneratorConfig, NamGenerator, StreamConfig, StreamSource};
use stash_dfs::{BlockKey, BlockSource, DiskModel, NodeStore, Partitioner, RollupStore};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TimeBin, TimeRange};
use stash_model::CellKey;
use stash_net::{NetConfig, NodeId, Router, RpcTable};
use stash_obs::MetricsRegistry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which system the cluster runs — the paper's two comparison points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The bare Galileo-like storage system: every query scans blocks
    /// ("the simple Galileo storage system", §VIII-C1).
    Basic,
    /// The full STASH middleware on top of the same storage.
    Stash,
}

/// Full configuration of a simulated deployment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Storage nodes (the paper used 120; laptop default 8).
    pub n_nodes: usize,
    /// Coordination workers per node (handle front-end `Query`s; may block
    /// waiting on subquery service at other nodes).
    pub coord_workers: usize,
    /// Subquery service workers per node (STASH graph evaluation; may block
    /// on block fetches at other nodes).
    pub service_workers: usize,
    /// Block-fetch workers per node (disk scans; never block on peers).
    /// The tiers together model the paper's 8-core nodes while keeping the
    /// cross-node wait graph acyclic.
    pub fetch_workers: usize,
    pub mode: Mode,
    /// Toggle for the dynamic replication scheme (Fig. 6d compares on/off).
    pub enable_replication: bool,
    pub stash: StashConfig,
    pub net: NetConfig,
    pub disk: DiskModel,
    /// Geohash length of storage blocks.
    pub block_len: u8,
    /// Geohash characters determining DHT placement (paper: 2).
    pub partition_prefix_len: u8,
    /// Spatial domain of the dataset (NAM coverage).
    pub data_bbox: BBox,
    /// Temporal domain of the dataset (the paper's NAM year).
    pub data_time: TimeRange,
    pub generator: GeneratorConfig,
    /// Attribute count of the dataset schema (NAM: 4).
    pub n_attrs: usize,
    /// Modeled CPU cost per observation scanned during block aggregation
    /// (virtual time; defines node capacity independent of the host's core
    /// count — DESIGN.md §2).
    pub scan_cost_per_obs: Duration,
    /// Modeled CPU cost per Cell served from the STASH graph (lookup,
    /// merge, serialization on the paper's nodes).
    pub cell_service_cost: Duration,
    pub sub_rpc_timeout: Duration,
    pub distress_timeout: Duration,
    pub client_timeout: Duration,
    /// Retries per sub-RPC (SubQuery / FetchPartials) after the first
    /// attempt times out; each retry backs off exponentially from
    /// `retry_backoff` with deterministic jitter. When retries are
    /// exhausted the coordinator fails the work over to DFS replicas.
    pub sub_rpc_retries: u32,
    /// Base delay of the sub-RPC retry backoff.
    pub retry_backoff: Duration,
    /// Client-side retries of a whole query (each lands on the next live
    /// coordinator in the round-robin rotation).
    pub client_retries: u32,
    /// Blocks that boot truncated and grow through live ingestion
    /// (DESIGN.md §13). Empty (the default) means a fully sealed dataset —
    /// exactly the pre-ingest behavior.
    pub live_blocks: Vec<(Geohash, TimeBin)>,
    /// Fraction of each live block's rows present at boot; the rest arrive
    /// as streamed append batches.
    pub live_base_fraction: f64,
    /// Delta-patch resident Cells on the applying node (the STASH path).
    /// `false` is the ablation: every affected Cell is invalidated instead,
    /// forcing recomputation from DFS on next touch.
    pub ingest_patch: bool,
    /// Coalesce a coordinator's scatter into one [`Msg::SubQueryBatch`]
    /// envelope per owner (PR 9). `false` is the ablation baseline: one
    /// [`Msg::SubQuery`] per fragment, paying per-message base latency for
    /// every fragment. Answers are bit-for-bit identical either way — the
    /// owner evaluates each fragment independently in both modes.
    pub batch_scatter: bool,
    /// Largest key count of one scatter fragment; an owner's share is
    /// chunked into fragments of at most this many Cells before batching.
    pub scatter_fragment_keys: usize,
    /// Continuous-rollup policy (DESIGN.md §17). Disabled by default;
    /// enabled policies can only be built through
    /// [`crate::config::RollupPolicy`]'s validated constructors.
    pub rollup: RollupPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_nodes: 8,
            coord_workers: 3,
            service_workers: 3,
            fetch_workers: 2,
            mode: Mode::Stash,
            enable_replication: true,
            stash: StashConfig::default(),
            net: NetConfig::default(),
            disk: DiskModel::default(),
            block_len: 3,
            partition_prefix_len: 2,
            data_bbox: BBox {
                min_lat: 20.0,
                max_lat: 55.0,
                min_lon: -130.0,
                max_lon: -60.0,
            },
            data_time: TimeRange::new(
                epoch_seconds(2015, 1, 1, 0, 0, 0),
                epoch_seconds(2016, 1, 1, 0, 0, 0),
            )
            .expect("static range"),
            generator: GeneratorConfig::default(),
            n_attrs: 4,
            scan_cost_per_obs: Duration::from_nanos(400),
            cell_service_cost: Duration::from_nanos(500),
            sub_rpc_timeout: Duration::from_secs(30),
            distress_timeout: Duration::from_secs(2),
            client_timeout: Duration::from_secs(120),
            sub_rpc_retries: 2,
            retry_backoff: Duration::from_millis(10),
            client_retries: 2,
            live_blocks: Vec::new(),
            live_base_fraction: 0.5,
            ingest_patch: true,
            batch_scatter: true,
            scatter_fragment_keys: 64,
            rollup: RollupPolicy::disabled(),
        }
    }
}

/// Per-node live counters (relaxed atomics).
#[derive(Debug, Default)]
pub struct NodeStats {
    pub queries_coordinated: AtomicU64,
    pub subqueries: AtomicU64,
    pub reroutes: AtomicU64,
    pub guest_serves: AtomicU64,
    pub handoffs: AtomicU64,
    pub replicas_hosted: AtomicU64,
    /// Sends the fabric refused (peer crashed / shutdown) — each one is a
    /// failover trigger somewhere upstream.
    pub send_failures: AtomicU64,
}

/// A point-in-time snapshot of one node's state, for experiment reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    pub node_idx: usize,
    pub graph_cells: usize,
    pub guest_cells: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub derived: u64,
    pub evictions: u64,
    pub disk_reads: u64,
    pub disk_bytes: u64,
    pub queries_coordinated: u64,
    pub subqueries: u64,
    pub reroutes: u64,
    pub guest_serves: u64,
    pub handoffs: u64,
    pub replicas_hosted: u64,
    pub send_failures: u64,
    pub pending: usize,
}

/// A running simulated deployment (Fig. 4): storage nodes, fabric, gateway.
pub struct SimCluster {
    config: Arc<ClusterConfig>,
    router: Router<Msg>,
    nodes: Vec<Arc<NodeCtx>>,
    client_rpc: Arc<RpcTable<ClientReply>>,
    ingest_rpc: Arc<RpcTable<bool>>,
    gateway_obs: Arc<MetricsRegistry>,
    gateway: NodeId,
    partitioner: Partitioner,
    source: Arc<dyn BlockSource>,
    /// Same object as `source` when `live_blocks` is non-empty.
    live: Option<Arc<LiveSource>>,
    /// Shared continuous-rollup state, when the policy is enabled. Like the
    /// block source it models durable replicated state: node crash/restart
    /// does not lose rollup Cells or regress the watermark.
    rollup: Option<Arc<RollupStore>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    shut: AtomicBool,
}

/// What one [`SimCluster::apply_retention`] pass did (DESIGN.md §17).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Raw blocks actually dropped from the block store this pass.
    pub blocks_dropped: usize,
    /// Modeled on-disk bytes of the dropped blocks.
    pub raw_bytes_dropped: usize,
    /// Decoded-frame cache bytes freed across all nodes (exact — summed
    /// from each [`stash_dfs::FrameCache`]'s own accounting).
    pub cache_bytes_freed: usize,
    /// Blocks eligible under the horizon+watermark but kept because the
    /// policy has `downsample` off (measurement mode).
    pub blocks_eligible_kept: usize,
}

/// Build one node's store, context, and threads (main + tiered workers).
/// Shared by boot and by [`SimCluster::restart_node`] — a restarted node
/// goes through exactly this path, so it comes back with an *empty* STASH
/// graph and must recover via PLM-driven recomputation from DFS.
fn spawn_node(
    config: &Arc<ClusterConfig>,
    router: &Router<Msg>,
    partitioner: &Partitioner,
    source: &Arc<dyn BlockSource>,
    rollup: &Option<Arc<RollupStore>>,
    ep: stash_net::Endpoint<Msg>,
    threads: &mut Vec<std::thread::JoinHandle<()>>,
) -> Arc<NodeCtx> {
    let node_idx = ep.id.0;
    let store = NodeStore::new(
        node_idx,
        partitioner.clone(),
        config.block_len,
        config.data_bbox,
        config.data_time,
        config.disk.clone(),
        source.clone(),
        config.stash.max_blocks_per_fetch,
    )
    .with_scan_cost(config.scan_cost_per_obs);
    let clock = Arc::new(LogicalClock::new());
    let (coord_tx, coord_rx) = unbounded();
    let (service_tx, service_rx) = unbounded();
    let (fetch_tx, fetch_rx) = unbounded();
    let ctx = Arc::new(NodeCtx::new(
        node_idx,
        Arc::clone(config),
        router.clone(),
        store,
        rollup.clone(),
        clock,
        WorkTiers {
            coord_tx,
            service_tx,
            fetch_tx,
        },
    ));
    // Main thread.
    let main_ctx = Arc::clone(&ctx);
    threads.push(
        std::thread::Builder::new()
            .name(format!("stash-node-{node_idx}"))
            .spawn(move || main_ctx.run_main(ep.inbox))
            .expect("spawn node main"),
    );
    // Tiered workers.
    let tiers = [
        ("coord", config.coord_workers, coord_rx),
        ("service", config.service_workers, service_rx),
        ("fetch", config.fetch_workers, fetch_rx),
    ];
    for (tier_name, count, rx) in tiers {
        for w in 0..count {
            let worker_ctx = Arc::clone(&ctx);
            let rx = rx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("stash-{tier_name}-{node_idx}-{w}"))
                    .spawn(move || worker_ctx.run_worker(rx))
                    .expect("spawn node worker"),
            );
        }
    }
    ctx
}

impl SimCluster {
    /// Boot a cluster: spawns `n_nodes * (1 + coord + service + fetch workers) + 2`
    /// threads (mains, workers, router, gateway).
    pub fn new(config: ClusterConfig) -> Self {
        // Backstop for configs assembled by struct literal during the
        // builder deprecation window; builder-built configs already passed
        // this check and cannot fail here.
        if let Err(e) = config.check() {
            panic!("invalid cluster config: {e}");
        }
        let config = Arc::new(config);
        let (router, mut endpoints) = Router::<Msg>::new(config.n_nodes + 1, config.net.clone());
        let gateway_ep = endpoints.pop().expect("gateway endpoint");
        let gateway = gateway_ep.id;
        let partitioner = Partitioner::new(config.n_nodes, config.partition_prefix_len);
        // Sealed dataset by default; with live blocks configured, the same
        // shared storage serves truncated blocks that grow via appends.
        let (live, source): (Option<Arc<LiveSource>>, Arc<dyn BlockSource>) =
            if config.live_blocks.is_empty() {
                let s = Arc::new(GenBlockSource::new(NamGenerator::new(
                    config.generator.clone(),
                )));
                (None, s)
            } else {
                let l = Arc::new(LiveSource::new(
                    NamGenerator::new(config.generator.clone()),
                    config.live_blocks.iter().copied(),
                    config.live_base_fraction,
                ));
                (Some(Arc::clone(&l)), l)
            };

        // Continuous rollups (DESIGN.md §17): backfill every configured
        // level from the boot-resident blocks before any node (or stream)
        // starts, so live blocks contribute exactly their base rows and
        // every later append folds a delta on top.
        let rollup: Option<Arc<RollupStore>> = if config.rollup.is_enabled() {
            let live_keys = config
                .live_blocks
                .iter()
                .map(|&(geohash, day)| BlockKey { geohash, day });
            let store = RollupStore::new(
                config.rollup.levels().iter().copied(),
                live_keys,
                config.data_time.end,
            );
            store
                .backfill(
                    source.as_ref(),
                    config.block_len,
                    &config.data_bbox,
                    &config.data_time,
                    &config.stash.sketch,
                    config.stash.max_cells_per_query,
                    config.stash.max_blocks_per_fetch,
                )
                .expect("rollup backfill over a checked config");
            Some(Arc::new(store))
        } else {
            None
        };

        let mut nodes = Vec::with_capacity(config.n_nodes);
        let mut threads = Vec::new();
        for ep in endpoints {
            nodes.push(spawn_node(
                &config,
                &router,
                &partitioner,
                &source,
                &rollup,
                ep,
                &mut threads,
            ));
        }

        // Gateway pump.
        let client_rpc = Arc::new(RpcTable::default());
        let ingest_rpc: Arc<RpcTable<bool>> = Arc::new(RpcTable::default());
        let gateway_obs = Arc::new(MetricsRegistry::new());
        let pump_rpc = Arc::clone(&client_rpc);
        let pump_ingest = Arc::clone(&ingest_rpc);
        let pump_obs = Arc::clone(&gateway_obs);
        threads.push(
            std::thread::Builder::new()
                .name("stash-gateway".into())
                .spawn(move || run_gateway(gateway_ep.inbox, pump_rpc, pump_ingest, pump_obs))
                .expect("spawn gateway"),
        );

        SimCluster {
            config,
            router,
            nodes,
            client_rpc,
            ingest_rpc,
            gateway_obs,
            gateway,
            partitioner,
            source,
            live,
            rollup,
            threads,
            shut: AtomicBool::new(false),
        }
    }

    /// Crash a node: the fabric severs its inbox (in-flight deliveries are
    /// dropped, future sends are refused) and its threads wind down. The
    /// data it cached dies with it; its DFS blocks remain readable through
    /// the replica chain, so queries keep answering exactly.
    pub fn crash_node(&self, idx: usize) {
        assert!(idx < self.nodes.len(), "node index out of range");
        self.router.crash_node(NodeId(idx));
    }

    /// Restart a crashed node: a fresh endpoint is wired into the fabric
    /// and a brand-new node context spawned — empty STASH graph, empty
    /// guest graph, zeroed counters. Recovery is PLM-driven: the first
    /// queries that land on it recompute their Cells from DFS.
    pub fn restart_node(&mut self, idx: usize) {
        assert!(idx < self.nodes.len(), "node index out of range");
        let ep = self.router.restart_node(NodeId(idx));
        let ctx = spawn_node(
            &self.config,
            &self.router,
            &self.partitioner,
            &self.source,
            &self.rollup,
            ep,
            &mut self.threads,
        );
        // The old context's threads already exited (crash poisons them);
        // their JoinHandles stay in `threads` and join instantly at drop.
        self.nodes[idx] = ctx;
    }

    /// Is this node currently crashed?
    pub fn is_crashed(&self, idx: usize) -> bool {
        self.router.is_crashed(NodeId(idx))
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// A new front-end handle.
    pub fn client(&self) -> ClusterClient {
        ClusterClient::new(
            self.router.clone(),
            self.gateway,
            Arc::clone(&self.client_rpc),
            self.config.n_nodes,
            self.config.client_timeout,
            self.config.client_retries,
        )
    }

    /// The underlying fabric — chaos scenarios install fault plans,
    /// partitions, and crashes directly on it.
    pub fn router(&self) -> &Router<Msg> {
        &self.router
    }

    /// A front-end handle with its own client-side STASH graph of
    /// `max_cells` capacity (the paper's §IX-A future work; see
    /// [`crate::client_cache`]).
    pub fn caching_client(&self, max_cells: usize) -> crate::client_cache::CachingClient {
        crate::client_cache::CachingClient::new(
            self.client(),
            self.router.clone(),
            self.gateway,
            Arc::clone(&self.client_rpc),
            self.partitioner.clone(),
            max_cells,
            self.config.client_timeout,
            self.config.n_attrs,
        )
    }

    /// A producer-side ingest handle: the [`stash_ingest::AppendSink`] that
    /// `stash_ingest::run_stream` pumps batches into (DESIGN.md §13).
    pub fn ingest_client(&self) -> IngestClient {
        IngestClient::new(
            self.router.clone(),
            self.gateway,
            Arc::clone(&self.ingest_rpc),
            self.partitioner.clone(),
            self.config.sub_rpc_timeout,
            self.config.client_retries,
            self.config.retry_backoff,
        )
    }

    /// The live (appendable) storage, if `live_blocks` was configured.
    pub fn live_source(&self) -> Option<&Arc<LiveSource>> {
        self.live.as_ref()
    }

    /// The shared continuous-rollup state, if the policy is enabled.
    pub fn rollup(&self) -> Option<&Arc<RollupStore>> {
        self.rollup.as_ref()
    }

    /// One retention pass (DESIGN.md §17): every block whose whole day ends
    /// at or before both the configured horizon and the rollup watermark is
    /// *eligible* — the rollup provably holds everything it would ever
    /// contribute. With `downsample` on, eligible blocks are dropped from
    /// the shared store (later reads are empty, versions jump to
    /// `u64::MAX` so stale decoded-frame cache entries lazily miss), each
    /// node's frame cache is purged with exact byte accounting, and every
    /// node's graphs get a region invalidation covering the block. With
    /// `downsample` off this only measures what a pass would free.
    ///
    /// Idempotent: a second pass over the same horizon drops nothing new.
    pub fn apply_retention(&self) -> RetentionReport {
        let mut report = RetentionReport::default();
        let (Some(rollup), Some(horizon)) = (&self.rollup, self.config.rollup.retention_horizon())
        else {
            return report;
        };
        for block in rollup.known_blocks() {
            if !rollup.retirable(&block, horizon) {
                continue;
            }
            if !self.config.rollup.downsample() {
                report.blocks_eligible_kept += 1;
                continue;
            }
            let bytes = self.source.block_bytes(block.geohash);
            let mut retired = false;
            for n in &self.nodes {
                let (r, freed) = n.store.retire_block(block);
                retired |= r;
                report.cache_bytes_freed += freed;
            }
            if retired {
                report.blocks_dropped += 1;
                report.raw_bytes_dropped += bytes;
                // Whatever any graph cached over this block predates the
                // drop; stale it so the next touch recomputes (and, at
                // rollup levels under the watermark, serves from the
                // rollup without raw data at all).
                self.invalidate_region(block.geohash.bbox(), block.day.range());
            }
        }
        report
    }

    /// The stream of append batches completing this cluster's live blocks:
    /// exactly the rows [`LiveSource`] withheld at boot, in the order and
    /// batching a real feed would deliver them. Panics when the cluster was
    /// not configured with `live_blocks`.
    pub fn live_stream(&self, batch_rows: usize) -> StreamSource {
        assert!(
            !self.config.live_blocks.is_empty(),
            "live_stream requires a cluster configured with live_blocks"
        );
        StreamSource::new(
            NamGenerator::new(self.config.generator.clone()),
            self.config.live_blocks.clone(),
            StreamConfig {
                base_fraction: self.config.live_base_fraction,
                batch_rows,
            },
        )
    }

    /// Gateway-side metrics (unexpected-message counter, …).
    pub fn gateway_obs(&self) -> &Arc<MetricsRegistry> {
        &self.gateway_obs
    }

    /// Direct node access for experiments and tests.
    pub fn node(&self, idx: usize) -> &Arc<NodeCtx> {
        &self.nodes[idx]
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Fabric-level counters.
    pub fn net_stats(&self) -> &stash_net::NetStats {
        self.router.stats()
    }

    /// Snapshot every node's counters.
    pub fn node_stats(&self) -> Vec<NodeStatsSnapshot> {
        self.nodes
            .iter()
            .map(|n| NodeStatsSnapshot {
                node_idx: n.node_idx,
                graph_cells: n.graph.len(),
                guest_cells: n.guest.len(),
                cache_hits: n.graph.stats().hits.load(Ordering::Relaxed),
                cache_misses: n.graph.stats().misses.load(Ordering::Relaxed),
                derived: n.graph.stats().derived.load(Ordering::Relaxed),
                evictions: n.graph.stats().evictions.load(Ordering::Relaxed),
                disk_reads: n.store.disk_stats().reads(),
                disk_bytes: n.store.disk_stats().bytes(),
                queries_coordinated: n.stats.queries_coordinated.load(Ordering::Relaxed),
                subqueries: n.stats.subqueries.load(Ordering::Relaxed),
                reroutes: n.stats.reroutes.load(Ordering::Relaxed),
                guest_serves: n.stats.guest_serves.load(Ordering::Relaxed),
                handoffs: n.stats.handoffs.load(Ordering::Relaxed),
                replicas_hosted: n.stats.replicas_hosted.load(Ordering::Relaxed),
                send_failures: n.stats.send_failures.load(Ordering::Relaxed),
                pending: n.pending(),
            })
            .collect()
    }

    /// Total Cells cached across all local graphs.
    pub fn total_cached_cells(&self) -> usize {
        self.nodes.iter().map(|n| n.graph.len()).sum()
    }

    /// Pre-populate the STASH graphs with exactly these Cells, bypassing
    /// client timing — used by the zoom experiments (Fig. 7d/7e) that
    /// "randomly stack the STASH graph" with 50/75/100 % of the relevant
    /// Cells.
    pub fn warm_keys(&self, keys: &[CellKey]) -> Result<(), String> {
        let mut by_owner: BTreeMap<usize, Vec<CellKey>> = BTreeMap::new();
        for &k in keys {
            by_owner
                .entry(self.nodes[0].store.partitioner().owner_of_cell(&k))
                .or_default()
                .push(k);
        }
        for (owner, group) in by_owner {
            self.nodes[owner]
                .eval_subquery(&group, false)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Drop every cached Cell on every node (cold-start experiments).
    pub fn clear_cache(&self) {
        for n in &self.nodes {
            n.graph.clear();
            n.guest.clear();
        }
    }

    /// Broadcast a storage-update invalidation (stale PLM bits, §IV-D).
    pub fn invalidate_region(&self, bbox: BBox, time: TimeRange) {
        for n in &self.nodes {
            self.router.send(
                self.gateway,
                NodeId(n.node_idx),
                Msg::InvalidateRegion { bbox, time },
                96,
            );
        }
    }

    /// Orderly teardown; also runs on drop.
    pub fn shutdown(&self) {
        if self.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        // Teardown is harness machinery, not protocol traffic: a fault plan
        // that dropped a Shutdown message would leave that node's receive
        // loop blocked forever and deadlock Drop's join.
        self.router.clear_faults();
        self.router.heal_partition();
        for n in &self.nodes {
            self.router
                .send(self.gateway, NodeId(n.node_idx), Msg::Shutdown, 16);
        }
        self.router
            .send(self.gateway, self.gateway, Msg::Shutdown, 16);
    }
}

impl Drop for SimCluster {
    fn drop(&mut self) {
        self.shutdown();
        // Give threads a moment to drain the shutdown messages, then stop
        // the fabric; threads blocked on closed channels exit.
        for t in self.threads.drain(..) {
            // Shutdown messages traverse the delay queue; joining bounds
            // teardown at a few wire latencies.
            if t.join().is_err() {
                // A panicked node thread shouldn't abort teardown.
            }
        }
        self.router.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::TemporalRes;
    use stash_model::AggQuery;

    fn small_config(mode: Mode) -> ClusterConfig {
        ClusterConfig::builder()
            .n_nodes(4)
            .coord_workers(2)
            .service_workers(2)
            .fetch_workers(2)
            .mode(mode)
            .disk(DiskModel::free())
            .net(NetConfig {
                base_latency: Duration::from_micros(20),
                ..NetConfig::default()
            })
            .generator(GeneratorConfig {
                seed: 3,
                obs_per_deg2_per_day: 30.0,
                max_obs_per_block: 10_000,
                value_quantum: 0.0,
            })
            .build()
            .expect("small test config is valid")
    }

    fn county_query() -> AggQuery {
        AggQuery::new(
            BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2),
            TimeRange::whole_day(2015, 2, 2),
            4,
            TemporalRes::Day,
        )
    }

    #[test]
    fn stash_cluster_answers_queries_and_caches() {
        let cluster = SimCluster::new(small_config(Mode::Stash));
        let client = cluster.client();
        let q = county_query();

        let cold = client.query(&q).run().expect("cold query");
        assert!(cold.total_count() > 0, "county query must see observations");
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.misses > 0);

        let warm = client.query(&q).run().expect("warm query");
        assert_eq!(warm.misses, 0, "second identical query must be all hits");
        assert_eq!(warm.cache_hits, cold.misses);
        // Same data both times.
        assert_eq!(warm.total_count(), cold.total_count());
        assert_eq!(warm.cells.len(), cold.cells.len());
        assert!(cluster.total_cached_cells() > 0);
        cluster.shutdown();
    }

    #[test]
    fn basic_cluster_never_caches() {
        let cluster = SimCluster::new(small_config(Mode::Basic));
        let client = cluster.client();
        let q = county_query();
        let a = client.query(&q).run().expect("first");
        let b = client.query(&q).run().expect("second");
        assert_eq!(a.total_count(), b.total_count());
        assert_eq!(b.cache_hits, 0);
        assert_eq!(cluster.total_cached_cells(), 0);
        // Disk was read both times.
        let reads: u64 = cluster.node_stats().iter().map(|s| s.disk_reads).sum();
        assert!(reads > 0);
        cluster.shutdown();
    }

    #[test]
    fn basic_and_stash_agree_on_results() {
        let basic = SimCluster::new(small_config(Mode::Basic));
        let stash = SimCluster::new(small_config(Mode::Stash));
        let q = county_query();
        let rb = basic.client().query(&q).run().expect("basic");
        let rs = stash.client().query(&q).run().expect("stash");
        assert_eq!(rb.total_count(), rs.total_count());
        assert_eq!(rb.cells.len(), rs.cells.len());
        for (cb, cs) in rb.cells.iter().zip(&rs.cells) {
            assert_eq!(cb.key, cs.key);
            assert_eq!(cb.summary.count(), cs.summary.count());
        }
        basic.shutdown();
        stash.shutdown();
    }

    #[test]
    fn warm_keys_prepopulates() {
        let cluster = SimCluster::new(small_config(Mode::Stash));
        let q = county_query();
        let keys = q.target_keys(100_000).unwrap();
        cluster.warm_keys(&keys).unwrap();
        assert!(cluster.total_cached_cells() >= keys.len());
        let r = cluster.client().query(&q).run().unwrap();
        assert_eq!(r.misses, 0, "prewarmed query must not miss");
        cluster.shutdown();
    }

    #[test]
    fn clear_cache_resets() {
        let cluster = SimCluster::new(small_config(Mode::Stash));
        let client = cluster.client();
        let q = county_query();
        client.query(&q).run().unwrap();
        assert!(cluster.total_cached_cells() > 0);
        cluster.clear_cache();
        assert_eq!(cluster.total_cached_cells(), 0);
        let again = client.query(&q).run().unwrap();
        assert!(again.misses > 0, "cleared cache must miss again");
        cluster.shutdown();
    }

    #[test]
    fn invalidation_forces_recomputation() {
        let cluster = SimCluster::new(small_config(Mode::Stash));
        let client = cluster.client();
        let q = county_query();
        client.query(&q).run().unwrap();
        cluster.invalidate_region(q.bbox, q.time);
        // Invalidations travel over the fabric; give them a beat.
        std::thread::sleep(Duration::from_millis(100));
        let r = client.query(&q).run().unwrap();
        assert!(r.misses > 0, "stale cells must be recomputed");
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let cluster = SimCluster::new(small_config(Mode::Stash));
        let q = county_query();
        let expected = cluster.client().query(&q).run().unwrap().total_count();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let client = cluster.client();
                let q = q.clone();
                std::thread::spawn(move || client.query(&q).run().unwrap().total_count())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
        cluster.shutdown();
    }

    #[test]
    fn coarse_query_spanning_partitions() {
        // Resolution 1 cells span every partition; exercises the
        // FetchPartials merge path end to end.
        let cluster = SimCluster::new(small_config(Mode::Stash));
        let client = cluster.client();
        let q = AggQuery::new(
            BBox::from_corner_extent(25.0, -120.0, 20.0, 40.0),
            TimeRange::whole_day(2015, 2, 2),
            1,
            TemporalRes::Day,
        );
        let r = client.query(&q).run().expect("coarse query");
        assert!(r.total_count() > 0);
        // Compare against Basic mode.
        let basic = SimCluster::new(small_config(Mode::Basic));
        let rb = basic.client().query(&q).run().expect("basic coarse");
        assert_eq!(r.total_count(), rb.total_count());
        cluster.shutdown();
        basic.shutdown();
    }

    #[test]
    fn traced_queries_account_their_latency() {
        let cluster = SimCluster::new(small_config(Mode::Stash));
        let client = cluster.client();
        let q = county_query();
        let t0 = std::time::Instant::now();
        let (result, trace) = client.query(&q).traced().run().expect("traced query");
        let client_wall = t0.elapsed().as_nanos() as u64;
        assert!(result.total_count() > 0);
        assert!(trace.wall_ns > 0, "coordinator must time itself");
        assert!(
            trace.local_sum_ns() <= trace.wall_ns,
            "local stage segments are disjoint wall slices: {} > {}",
            trace.local_sum_ns(),
            trace.wall_ns
        );
        assert!(
            client_wall >= trace.wall_ns,
            "client-visible latency includes the coordinator's wall"
        );
        // A cold county query misses everywhere: DFS time must show up.
        assert!(trace.agg.dfs_ns > 0, "cold query must charge dfs time");
        // Exactly one coordinator observed the query into its registry.
        let coordinated: u64 = (0..cluster.n_nodes())
            .map(|i| cluster.node(i).obs.counter("query.coordinate.ok").get())
            .sum();
        assert_eq!(coordinated, 1);
        // A warm repeat serves from cache: PLM/lookup time recorded, and
        // the cache stats that feed `figures --profile` moved.
        let (_, warm) = client.query(&q).traced().run().expect("warm traced query");
        assert!(warm.agg.plm_ns > 0, "warm query must charge plm lookups");
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "worker tier")]
    fn empty_worker_tier_rejected() {
        let mut c = small_config(Mode::Stash);
        c.service_workers = 0;
        let _ = SimCluster::new(c);
    }
}
