//! One simulated storage node: Galileo store + STASH middleware + hotspot
//! manager.
//!
//! Threading discipline (this is what keeps the cluster deadlock-free):
//!
//! * The **main thread** drains the fabric inbox and never blocks: RPC
//!   responses complete waiting slots immediately, control messages
//!   (Distress) are answered inline, and all real work is dispatched to the
//!   worker pool. Because main threads always drain, a worker blocked on a
//!   sub-RPC is always eventually woken by its peer's main thread.
//! * **Workers** (the paper's 8-core nodes, scaled down) evaluate queries,
//!   scan blocks, and may block on sub-RPCs to other nodes.
//! * **Handoff** runs on its own short-lived thread, at most one at a time,
//!   so a hotspotted node can replicate Cliques while its workers stay busy
//!   serving the very queue that triggered the hotspot.
//!
//! The pending-work counter doubles as the paper's hotspot signal: "a node
//! deems itself to be hotspotted when the number of pending requests in its
//! message queue crosses a configured threshold" (§VII-B1).

use crate::cluster::{ClusterConfig, Mode, NodeStats};
use crate::protocol::{ClusterError, Msg};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use stash_core::{
    evaluate_traced, CliqueFinder, GuestBook, LogicalClock, RouteDecision, RoutingTable, StashGraph,
};
use stash_dfs::{
    frame_spatial_res, plan_blocks, AppendOutcome, BlockFrame, BlockKey, NodeStore, RollupStore,
};
use stash_geo::TemporalRes;
use stash_model::level::MAX_SPATIAL_RES;
use stash_model::{Cell, CellKey, CellSummary, FlatPartials, Level, Observation, QueryResult};
use stash_net::rpc::RpcError;
use stash_net::{Envelope, NodeId, Router, RpcTable};
use stash_obs::{MetricsRegistry, QueryTrace, StageTimes};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replies a node can wait for. Data replies carry the responder's
/// [`StageTimes`]; the response-leg wire time is folded in by the main
/// thread when the reply envelope is drained (it is the only place that
/// sees the envelope's delivery timestamp).
#[derive(Debug)]
pub enum RpcReply {
    SubResult(Result<QueryResult, ClusterError>, StageTimes),
    /// Per-fragment outcomes of one [`Msg::SubQueryBatch`], index-aligned
    /// with the request's fragments.
    SubBatch(Vec<Result<QueryResult, ClusterError>>, StageTimes),
    Partials(
        Result<Vec<(CellKey, CellSummary)>, ClusterError>,
        StageTimes,
    ),
    Ack(bool),
}

/// Why one gather round could not complete (see [`NodeCtx::try_gather`]):
/// an unreachable owner is recoverable — grow the exclusion set and replan
/// onto the replica chain; anything else ends the gather.
#[derive(Debug)]
enum GatherFailure {
    Owner(usize, ClusterError),
    Fatal(ClusterError),
}

/// Fold one partials fragment — the local scan's, or a peer's
/// wire-delivered reply — into a gather's per-key accumulators.
///
/// `sketch_merges` counts pairwise estimator-state merges (both sides
/// sketched; the seed's first adoption is a clone, not a merge) — the
/// coordinator-side half of the `sketch.merges` counter, matching the
/// per-store fragment-merge half.
///
/// A fragment built by a misconfigured peer (wrong schema width or sketch
/// parameters) is a protocol fault of that deployment, not a reason to
/// crash this node: the merge is refused with a typed error and the round
/// aborts.
fn absorb_fragment(
    merged: &mut HashMap<CellKey, CellSummary>,
    sketch_merges: &mut u64,
    parts: Vec<(CellKey, CellSummary)>,
) -> Result<(), GatherFailure> {
    for (key, summary) in parts {
        if let Some(m) = merged.get_mut(&key) {
            let sketched = m.has_sketches() && summary.has_sketches();
            m.merge_strict(&summary).map_err(|e| {
                GatherFailure::Fatal(ClusterError::Protocol(format!(
                    "partials fragment for {key:?} refused: {e}"
                )))
            })?;
            if sketched {
                *sketch_merges += summary.n_attrs() as u64;
            }
        }
    }
    Ok(())
}

/// Shared state of one node, used by its main thread, workers, and handoff
/// thread.
pub struct NodeCtx {
    pub node_idx: usize,
    pub id: NodeId,
    pub config: Arc<ClusterConfig>,
    pub router: Router<Msg>,
    pub store: NodeStore,
    /// Shared continuous-rollup state (DESIGN.md §17), when the cluster's
    /// [`crate::config::RollupPolicy`] is enabled. Cluster-wide durable
    /// state like the block source — not per-node cache.
    pub rollup: Option<Arc<RollupStore>>,
    /// The node's local STASH graph.
    pub graph: StashGraph,
    /// The guest graph holding replicas from hotspotted peers (§VII-A).
    pub guest: StashGraph,
    pub guestbook: Mutex<GuestBook>,
    pub routing: Mutex<RoutingTable>,
    pub clock: Arc<LogicalClock>,
    pub rpc: RpcTable<RpcReply>,
    pub stats: NodeStats,
    /// Named counters/gauges/histograms for this node (DESIGN.md §11).
    pub obs: Arc<MetricsRegistry>,
    /// Requests dispatched to workers and not yet finished (all tiers).
    pending: AtomicUsize,
    /// Data-service work (subqueries, fetches, replication) queued or in
    /// flight — the hotspot signal. Coordination waits are excluded: a
    /// node blocked *waiting on others* is not itself overloaded.
    service_pending: AtomicUsize,
    /// Level of the most recent SubQuery — where a hotspot's Cliques live.
    hot_level: AtomicU8,
    handoff_inflight: AtomicBool,
    cooldown_until: AtomicU64,
    /// Ingest fence (DESIGN.md §13). Bumped once *before* a storage append
    /// and once *after* its patch/invalidate pass (so an odd value means an
    /// apply is in flight), and by two per processed [`Msg::Invalidate`].
    /// The evaluator reads it around `evaluate`: if it moved — or was odd
    /// at the start — cells cached by that evaluation may predate the
    /// newest rows and the requested keys are conservatively re-staled.
    pub ingest_epoch: AtomicU64,
    /// Serializes this node's append applies; the epoch's parity trick
    /// above needs non-overlapping apply windows.
    ingest_apply: Mutex<()>,
    /// Deterministic per-node RNG stream for reroute coin flips.
    rng_state: AtomicU64,
    /// Tiered work queues. Coordination (tier 0) may block on subquery
    /// service (tier 1), which may block on block fetches (tier 2), which
    /// never block — the cross-node wait graph is acyclic by construction,
    /// so the cluster cannot deadlock however saturated it gets.
    tiers: WorkTiers,
}

/// The three per-node worker tiers (see module docs).
#[derive(Clone)]
pub struct WorkTiers {
    pub coord_tx: Sender<Envelope<Msg>>,
    pub service_tx: Sender<Envelope<Msg>>,
    pub fetch_tx: Sender<Envelope<Msg>>,
}

impl NodeCtx {
    pub fn new(
        node_idx: usize,
        config: Arc<ClusterConfig>,
        router: Router<Msg>,
        store: NodeStore,
        rollup: Option<Arc<RollupStore>>,
        clock: Arc<LogicalClock>,
        tiers: WorkTiers,
    ) -> Self {
        let mut guest_cfg = config.stash.clone();
        guest_cfg.max_cells = config.stash.guest_max_cells;
        // Share one registry between the node and its store so the `dfs.*`
        // scan-kernel counters land next to the node's other metrics, and
        // size the decoded-frame cache from config.
        let obs = Arc::new(MetricsRegistry::new());
        let store = store
            .with_metrics(Arc::clone(&obs))
            .with_frame_cache_bytes(config.stash.frame_cache_bytes)
            .with_sketches(config.stash.sketch.clone());
        NodeCtx {
            node_idx,
            id: NodeId(node_idx),
            graph: StashGraph::new(config.stash.clone(), Arc::clone(&clock)),
            guest: StashGraph::new(guest_cfg, Arc::clone(&clock)),
            guestbook: Mutex::new(GuestBook::new()),
            routing: Mutex::new(RoutingTable::new()),
            clock,
            rpc: RpcTable::default(),
            stats: NodeStats::default(),
            obs,
            pending: AtomicUsize::new(0),
            service_pending: AtomicUsize::new(0),
            hot_level: AtomicU8::new(
                Level::of(4, stash_geo::TemporalRes::Day)
                    .expect("static level")
                    .index(),
            ),
            handoff_inflight: AtomicBool::new(false),
            cooldown_until: AtomicU64::new(0),
            ingest_epoch: AtomicU64::new(0),
            ingest_apply: Mutex::new(()),
            rng_state: AtomicU64::new((0x9E37_79B9u64 ^ ((node_idx as u64) << 17)) | 1),
            config,
            router,
            store,
            rollup,
            tiers,
        }
    }

    /// The paper's hotspot predicate: "the number of pending requests in
    /// its message queue crosses a configured threshold" (§VII-B1), counted
    /// over the data-service queue.
    pub fn is_hotspotted(&self) -> bool {
        self.service_pending.load(Ordering::Relaxed) > self.config.stash.hotspot_threshold
    }

    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Cheap xorshift coin flip for probabilistic rerouting.
    fn flip(&self, probability: f64) -> bool {
        let mut x = self.rng_state.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state.store(x, Ordering::Relaxed);
        ((x >> 11) as f64 / (1u64 << 53) as f64) < probability
    }

    /// Send over the fabric. Returns `false` when the fabric refuses the
    /// message — destination (or self) crashed, or shutdown. Refusals are
    /// counted per node and logged once; callers on the query path must
    /// treat `false` as [`ClusterError::Unreachable`] and fail over.
    #[must_use]
    fn send(&self, dst: NodeId, msg: Msg) -> bool {
        let bytes = msg.wire_size();
        if self.router.send(self.id, dst, msg, bytes) {
            return true;
        }
        if self.stats.send_failures.fetch_add(1, Ordering::Relaxed) == 0 {
            eprintln!(
                "stash-cluster: node {} -> {} send refused by fabric (peer crashed or shutdown); \
                 further refusals counted silently",
                self.node_idx, dst.0
            );
        }
        false
    }

    // =======================================================================
    // Main thread
    // =======================================================================

    /// Drain the fabric inbox until shutdown — or until the fabric severs
    /// the inbox (node crash): either way the workers are poisoned so the
    /// whole node winds down instead of leaving threads parked forever.
    pub fn run_main(self: &Arc<Self>, inbox: stash_net::Inbox<Msg>) {
        while let Ok(env) = inbox.recv() {
            if matches!(env.payload, Msg::Shutdown) {
                self.poison_workers();
                return;
            }
            self.handle_fast(env);
        }
        // recv() erred: the router crashed this node and dropped its inbox
        // sender. Workers must die too — a crashed node answers nothing.
        self.poison_workers();
    }

    /// Send every worker in every tier a poison pill.
    fn poison_workers(&self) {
        let poisons = [
            (&self.tiers.coord_tx, self.config.coord_workers),
            (&self.tiers.service_tx, self.config.service_workers),
            (&self.tiers.fetch_tx, self.config.fetch_workers),
        ];
        for (tx, n) in poisons {
            for _ in 0..n {
                let _ = tx.send(Envelope {
                    src: self.id,
                    dst: self.id,
                    wire: Duration::ZERO,
                    payload: Msg::Shutdown,
                });
            }
        }
    }

    fn handle_fast(self: &Arc<Self>, env: Envelope<Msg>) {
        let wire_ns = env.wire.as_nanos() as u64;
        match env.payload {
            // RPC completions — wake waiting workers/handoff immediately.
            // Data replies get their response-leg wire time folded in here:
            // the envelope's delivery timestamp dies with the envelope.
            Msg::SubQueryResponse {
                rpc,
                result,
                mut trace,
            } => {
                trace.wire_ns += wire_ns;
                self.rpc.complete(rpc, RpcReply::SubResult(result, trace));
            }
            Msg::SubQueryBatchResponse {
                rpc,
                results,
                mut trace,
            } => {
                trace.wire_ns += wire_ns;
                self.rpc.complete(rpc, RpcReply::SubBatch(results, trace));
            }
            Msg::PartialsResponse {
                rpc,
                partials,
                mut trace,
            } => {
                trace.wire_ns += wire_ns;
                // Validate the flat buffer at the trust boundary; a corrupt
                // fragment becomes a protocol error, never a panic.
                let decoded = partials.and_then(|fp| {
                    fp.decode()
                        .map_err(|e| ClusterError::Protocol(format!("partials fragment: {e}")))
                });
                self.rpc.complete(rpc, RpcReply::Partials(decoded, trace));
            }
            Msg::DistressAck { rpc, accept } => {
                self.rpc.complete(rpc, RpcReply::Ack(accept));
            }
            Msg::ReplicationResponse { rpc, ok } => {
                self.rpc.complete(rpc, RpcReply::Ack(ok));
            }
            Msg::AppendAck { rpc, applied } => {
                self.rpc.complete(rpc, RpcReply::Ack(applied));
            }
            Msg::InvalidateAck { rpc } => {
                self.rpc.complete(rpc, RpcReply::Ack(true));
            }
            // Ingest invalidation: answered inline on the main thread, so
            // an applier's ack-wait doubles as a processing barrier — once
            // every peer acked, no cache anywhere still serves the
            // pre-append summary as fresh (DESIGN.md §13). Epoch first:
            // an evaluation that caches a cell between our stale-marks and
            // its own final fence check must still see the bump.
            Msg::Invalidate {
                rpc,
                reply_to,
                keys,
            } => {
                self.ingest_epoch.fetch_add(2, Ordering::SeqCst);
                let marked = self.graph.mark_stale_keys(&keys) + self.guest.mark_stale_keys(&keys);
                self.obs.inc("ingest.invalidate.recv");
                self.obs
                    .counter("ingest.cells_invalidated")
                    .add(marked as u64);
                let _ = self.send(reply_to, Msg::InvalidateAck { rpc });
            }
            // Control plane: answer inline (§VII-B3). A hotspotted or full
            // helper declines.
            Msg::Distress {
                rpc,
                reply_to,
                n_cells,
            } => {
                let accept = !self.is_hotspotted()
                    && self
                        .guestbook
                        .lock()
                        .can_accommodate(n_cells, self.config.stash.guest_max_cells);
                self.obs.inc(if accept {
                    "handoff.distress.accept"
                } else {
                    "handoff.distress.decline"
                });
                let _ = self.send(reply_to, Msg::DistressAck { rpc, accept });
            }
            // Rerouting decision happens *before* queueing (§VII-C): a
            // hotspotted node sheds covered subqueries to their helper.
            Msg::SubQuery {
                rpc,
                reply_to,
                keys,
                allow_reroute,
                via_guest,
            } => {
                if allow_reroute && !via_guest && self.is_hotspotted() {
                    let decision = self.routing.lock().decide(&keys);
                    if let RouteDecision::Covered { helper } = decision {
                        if self.flip(self.config.stash.reroute_probability) {
                            let forwarded = Msg::SubQuery {
                                rpc,
                                reply_to,
                                keys: keys.clone(),
                                allow_reroute: false,
                                via_guest: true,
                            };
                            if self.send(NodeId(helper), forwarded) {
                                self.stats.reroutes.fetch_add(1, Ordering::Relaxed);
                                self.obs.inc("handoff.reroute");
                                return;
                            }
                            // Helper crashed since the route was recorded:
                            // drop its routes and serve locally instead.
                            self.routing.lock().drop_helper(helper);
                        }
                    }
                }
                self.dispatch(Envelope {
                    src: env.src,
                    dst: env.dst,
                    wire: env.wire,
                    payload: Msg::SubQuery {
                        rpc,
                        reply_to,
                        keys,
                        allow_reroute,
                        via_guest,
                    },
                });
            }
            // Batched scatter sheds like the per-fragment path: the whole
            // batch reroutes only when the helper covers *every* fragment
            // (the routing decision runs over the flattened key set).
            Msg::SubQueryBatch {
                rpc,
                reply_to,
                fragments,
                allow_reroute,
                via_guest,
            } => {
                if allow_reroute && !via_guest && self.is_hotspotted() {
                    let all: Vec<CellKey> = fragments.iter().flatten().copied().collect();
                    let decision = self.routing.lock().decide(&all);
                    if let RouteDecision::Covered { helper } = decision {
                        if self.flip(self.config.stash.reroute_probability) {
                            let forwarded = Msg::SubQueryBatch {
                                rpc,
                                reply_to,
                                fragments: fragments.clone(),
                                allow_reroute: false,
                                via_guest: true,
                            };
                            if self.send(NodeId(helper), forwarded) {
                                self.stats.reroutes.fetch_add(1, Ordering::Relaxed);
                                self.obs.inc("handoff.reroute");
                                return;
                            }
                            self.routing.lock().drop_helper(helper);
                        }
                    }
                }
                self.dispatch(Envelope {
                    src: env.src,
                    dst: env.dst,
                    wire: env.wire,
                    payload: Msg::SubQueryBatch {
                        rpc,
                        reply_to,
                        fragments,
                        allow_reroute,
                        via_guest,
                    },
                });
            }
            // Everything else is real work.
            payload => {
                self.dispatch(Envelope {
                    src: env.src,
                    dst: env.dst,
                    wire: env.wire,
                    payload,
                });
            }
        }
    }

    fn dispatch(self: &Arc<Self>, env: Envelope<Msg>) {
        self.pending.fetch_add(1, Ordering::Relaxed);
        if !matches!(env.payload, Msg::Query { .. }) {
            self.service_pending.fetch_add(1, Ordering::Relaxed);
        }
        // Route to the tier whose workers may safely block on the tiers
        // below it. Channels only close at shutdown; drop silently then.
        let tx = match &env.payload {
            Msg::Query { .. } => &self.tiers.coord_tx,
            Msg::FetchPartials { .. } => &self.tiers.fetch_tx,
            _ => &self.tiers.service_tx,
        };
        let _ = tx.send(env);
        self.maybe_start_handoff();
    }

    // =======================================================================
    // Workers
    // =======================================================================

    /// Worker loop: process dispatched envelopes until shutdown.
    pub fn run_worker(self: &Arc<Self>, work_rx: Receiver<Envelope<Msg>>) {
        while let Ok(env) = work_rx.recv() {
            if matches!(env.payload, Msg::Shutdown) {
                return;
            }
            let is_service = !matches!(env.payload, Msg::Query { .. });
            self.process(env);
            self.pending.fetch_sub(1, Ordering::Relaxed);
            if is_service {
                self.service_pending.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn process(self: &Arc<Self>, env: Envelope<Msg>) {
        // Request-leg wire time of the envelope that carried this work in;
        // it rides out on the reply's trace so the coordinator's aggregate
        // sees both legs.
        let wire_ns = env.wire.as_nanos() as u64;
        match env.payload {
            Msg::Query {
                rpc,
                reply_to,
                query,
            } => {
                self.stats
                    .queries_coordinated
                    .fetch_add(1, Ordering::Relaxed);
                let (result, mut trace) = self.coordinate(&query);
                trace.agg.wire_ns += wire_ns;
                self.observe_query(&trace, result.is_ok());
                let _ = self.send(reply_to, Msg::QueryResponse { rpc, result, trace });
            }
            Msg::SubQuery {
                rpc,
                reply_to,
                keys,
                via_guest,
                ..
            } => {
                self.stats.subqueries.fetch_add(1, Ordering::Relaxed);
                if let Some(k) = keys.first() {
                    self.hot_level.store(k.level().index(), Ordering::Relaxed);
                }
                let (result, mut trace) = self.eval_subquery_traced(&keys, via_guest);
                trace.wire_ns += wire_ns;
                let _ = self.send(reply_to, Msg::SubQueryResponse { rpc, result, trace });
                self.maintain();
            }
            Msg::SubQueryBatch {
                rpc,
                reply_to,
                fragments,
                via_guest,
                ..
            } => {
                // Each fragment is evaluated exactly as a standalone
                // SubQuery would be — fragments succeed or fail
                // independently, so the coordinator can absorb the good
                // ones and retry only the bad.
                self.stats
                    .subqueries
                    .fetch_add(fragments.len() as u64, Ordering::Relaxed);
                if let Some(k) = fragments.iter().flatten().next() {
                    self.hot_level.store(k.level().index(), Ordering::Relaxed);
                }
                let mut trace = StageTimes::default();
                let results: Vec<Result<QueryResult, ClusterError>> = fragments
                    .iter()
                    .map(|keys| {
                        let (result, st) = self.eval_subquery_traced(keys, via_guest);
                        trace.add(&st);
                        result
                    })
                    .collect();
                trace.wire_ns += wire_ns;
                let _ = self.send(
                    reply_to,
                    Msg::SubQueryBatchResponse {
                        rpc,
                        results,
                        trace,
                    },
                );
                self.maintain();
            }
            Msg::FetchPartials {
                rpc,
                reply_to,
                keys,
                exclude,
            } => {
                let scan = Instant::now();
                // Ship the fragment as one contiguous flat buffer; its
                // length is the exact wire size the fabric charges.
                let partials = self
                    .store
                    .fetch_partials_excluding(&keys, &exclude)
                    .map(|v| {
                        let parts: Vec<(CellKey, CellSummary)> =
                            v.into_iter().map(|p| (p.key, p.summary)).collect();
                        FlatPartials::encode(&parts)
                    })
                    .map_err(|e| ClusterError::Storage(e.to_string()));
                let trace = StageTimes {
                    dfs_ns: scan.elapsed().as_nanos() as u64,
                    wire_ns,
                    ..StageTimes::default()
                };
                self.obs.observe("store.scan", trace.dfs_ns);
                let _ = self.send(
                    reply_to,
                    Msg::PartialsResponse {
                        rpc,
                        partials,
                        trace,
                    },
                );
            }
            Msg::ReplicationRequest {
                rpc,
                reply_to,
                src_node,
                cells,
            } => {
                let ok = self.accept_replicas(src_node, cells);
                let _ = self.send(reply_to, Msg::ReplicationResponse { rpc, ok });
            }
            Msg::InvalidateRegion { bbox, time } => {
                self.graph.invalidate_region(&bbox, &time);
                self.guest.invalidate_region(&bbox, &time);
            }
            Msg::AppendBatch {
                rpc,
                reply_to,
                block,
                seq,
                rows,
                last,
            } => {
                self.apply_append(rpc, reply_to, block, seq, rows, last);
            }
            // Responses never reach workers (completed on the main thread).
            other => unreachable!("worker received non-work message {other:?}"),
        }
    }

    // -- Coordinator role ----------------------------------------------------

    /// Evaluate a whole front-end query: split target Cells by owner,
    /// scatter, gather, merge (Basic mode goes straight to storage). The
    /// returned [`QueryTrace`] is assembled here and rides back to the
    /// client in the `QueryResponse`; its `local` view is built from
    /// disjoint wall segments of this thread, so `local.sum_ns()` can
    /// never exceed `wall_ns`.
    fn coordinate(
        self: &Arc<Self>,
        query: &stash_model::AggQuery,
    ) -> (Result<QueryResult, ClusterError>, QueryTrace) {
        let start = Instant::now();
        let mut trace = QueryTrace::default();
        let keys = query
            .target_keys(self.config.stash.max_cells_per_query)
            .map_err(|e| ClusterError::BadQuery(e.to_string()));
        trace.local.route_ns += start.elapsed().as_nanos() as u64;
        let result = match keys {
            Err(e) => Err(e),
            Ok(keys) if keys.is_empty() => Ok(QueryResult::default()),
            Ok(keys) => match self.config.mode {
                Mode::Basic => self.coordinate_basic(&keys, &mut trace),
                Mode::Stash => self.coordinate_stash(&keys, &mut trace),
            },
        };
        trace.wall_ns = start.elapsed().as_nanos() as u64;
        // The aggregate view covers the whole cluster, this node included.
        let local = trace.local;
        trace.agg.add(&local);
        (result, trace)
    }

    /// Record one finished coordination into this node's registry.
    fn observe_query(&self, trace: &QueryTrace, ok: bool) {
        self.obs.inc(if ok {
            "query.coordinate.ok"
        } else {
            "query.coordinate.err"
        });
        self.obs.observe("query.wall", trace.wall_ns);
        for (stage, ns) in trace.agg.stages() {
            if ns > 0 {
                self.obs.observe(&format!("query.stage.{stage}"), ns);
            }
        }
        if trace.retries > 0 {
            self.obs.counter("query.retries").add(trace.retries as u64);
        }
        if trace.failovers > 0 {
            self.obs
                .counter("query.failovers")
                .add(trace.failovers as u64);
        }
    }

    /// Basic system: every query scans blocks; nothing is cached. Keys at
    /// partition granularity or finer are grouped by owner (their blocks
    /// are colocated); coarser keys span partitions and go through the
    /// scatter/merge path. An owner that stays unreachable after retries is
    /// failed over to the raw-storage path with the dead node excluded, so
    /// its DFS replicas answer instead (answers stay exact).
    fn coordinate_basic(
        self: &Arc<Self>,
        keys: &[CellKey],
        trace: &mut QueryTrace,
    ) -> Result<QueryResult, ClusterError> {
        let route = Instant::now();
        let prefix_len = self.store.partitioner().prefix_len();
        let (local_ownable, spanning): (Vec<CellKey>, Vec<CellKey>) =
            keys.iter().partition(|k| k.geohash.len() >= prefix_len);
        let mut summaries: Vec<(CellKey, CellSummary)> = Vec::with_capacity(keys.len());
        if !local_ownable.is_empty() {
            let mut by_owner: BTreeMap<usize, Vec<CellKey>> = BTreeMap::new();
            for k in local_ownable {
                by_owner
                    .entry(self.store.partitioner().owner_of_cell(&k))
                    .or_default()
                    .push(k);
            }
            let own = by_owner.remove(&self.node_idx);
            // First wave: one scattered attempt per owner, waits in parallel.
            let mut waits = Vec::with_capacity(by_owner.len());
            let mut stragglers: Vec<(usize, Vec<CellKey>)> = Vec::new();
            for (owner, group) in by_owner {
                let (rpc, rx) = self.rpc.register();
                let msg = Msg::FetchPartials {
                    rpc,
                    reply_to: self.id,
                    keys: group.clone(),
                    exclude: Vec::new(),
                };
                if self.send(NodeId(owner), msg) {
                    waits.push((owner, group, rpc, rx));
                } else {
                    self.rpc.cancel(rpc);
                    stragglers.push((owner, group));
                }
            }
            trace.subqueries += waits.len() as u32;
            trace.local.route_ns += route.elapsed().as_nanos() as u64;
            if let Some(group) = own {
                let scan = Instant::now();
                summaries.extend(
                    self.store
                        .fetch_partials(&group)
                        .map_err(|e| ClusterError::Storage(e.to_string()))?
                        .into_iter()
                        .map(|p| (p.key, p.summary)),
                );
                trace.local.dfs_ns += scan.elapsed().as_nanos() as u64;
            }
            let waited = Instant::now();
            for (owner, group, rpc, rx) in waits {
                match self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout) {
                    Ok(RpcReply::Partials(Ok(parts), st)) => {
                        trace.absorb_sub(&st);
                        summaries.extend(parts);
                    }
                    Ok(RpcReply::Partials(Err(e), _)) => return Err(e),
                    Ok(other) => {
                        return Err(ClusterError::Protocol(format!(
                            "unexpected reply {other:?}"
                        )))
                    }
                    Err(RpcError::Timeout) => stragglers.push((owner, group)),
                    Err(RpcError::Canceled) => {
                        return Err(ClusterError::Protocol("rpc slot canceled".into()))
                    }
                }
            }
            trace.local.wait_ns += waited.elapsed().as_nanos() as u64;
            // Second wave: retry each straggler with backoff; if the owner
            // stays dark, read its blocks from the replica chain.
            for (owner, group) in stragglers {
                trace.retries += 1;
                let retried = Instant::now();
                let mut acc = StageTimes::default();
                let outcome = self.fetch_partials_rpc(owner, &group, &[], &mut acc);
                let outcome = match outcome {
                    Ok(parts) => Ok(parts),
                    Err(e) if e.is_transient() => {
                        trace.failovers += 1;
                        self.gather_partials(&group, &[owner], &mut acc)
                    }
                    Err(e) => Err(e),
                };
                trace.local.retry_ns += retried.elapsed().as_nanos() as u64;
                trace.absorb_sub(&acc);
                summaries.extend(outcome?);
            }
        } else {
            trace.local.route_ns += route.elapsed().as_nanos() as u64;
        }
        if !spanning.is_empty() {
            let span = Instant::now();
            let mut acc = StageTimes::default();
            let parts = self.gather_partials(&spanning, &[], &mut acc);
            trace.local.dfs_ns += span.elapsed().as_nanos() as u64;
            trace.absorb_sub(&acc);
            summaries.extend(parts?);
        }
        let merge = Instant::now();
        let mut cells: Vec<Cell> = summaries
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(key, summary)| Cell { key, summary })
            .collect();
        cells.sort_by_key(|c| c.key);
        cells.dedup_by_key(|c| c.key);
        trace.local.merge_ns += merge.elapsed().as_nanos() as u64;
        Ok(QueryResult {
            misses: keys.len(),
            cells,
            ..Default::default()
        })
    }

    /// STASH system: scatter SubQueries to Cell owners, gather, merge. Owner
    /// failures degrade per group: retry with backoff, then bypass the dead
    /// owner's STASH graph entirely and recompute its Cells from DFS
    /// replicas ([`NodeCtx::gather_partials`] with the owner excluded).
    fn coordinate_stash(
        self: &Arc<Self>,
        keys: &[CellKey],
        trace: &mut QueryTrace,
    ) -> Result<QueryResult, ClusterError> {
        let route = Instant::now();
        let mut by_owner: BTreeMap<usize, Vec<CellKey>> = BTreeMap::new();
        for &k in keys {
            by_owner
                .entry(self.store.partitioner().owner_of_cell(&k))
                .or_default()
                .push(k);
        }
        // Evaluate our own share inline (no message round-trip and no risk
        // of waiting on our own queue), scatter the rest.
        let own = by_owner.remove(&self.node_idx);
        // Each owner's share is chunked into fragments of at most
        // `scatter_fragment_keys` Cells. Batched mode (the default) ships
        // all of an owner's fragments in one SubQueryBatch envelope — one
        // wire trip per owner; the ablation pays one SubQuery envelope per
        // fragment. Fragments are evaluated independently by the owner in
        // both modes, so the merged answer is bit-for-bit identical.
        let frag_keys = self.config.scatter_fragment_keys.max(1);
        let mut single_waits = Vec::new();
        let mut batch_waits = Vec::new();
        let mut stragglers: Vec<(usize, Vec<CellKey>)> = Vec::new();
        for (owner, group) in by_owner {
            let fragments: Vec<Vec<CellKey>> =
                group.chunks(frag_keys).map(|c| c.to_vec()).collect();
            if self.config.batch_scatter {
                let (rpc, rx) = self.rpc.register();
                let msg = Msg::SubQueryBatch {
                    rpc,
                    reply_to: self.id,
                    fragments: fragments.clone(),
                    allow_reroute: true,
                    via_guest: false,
                };
                if self.send(NodeId(owner), msg) {
                    trace.subqueries += fragments.len() as u32;
                    batch_waits.push((owner, fragments, rpc, rx));
                } else {
                    self.rpc.cancel(rpc);
                    stragglers.extend(fragments.into_iter().map(|f| (owner, f)));
                }
            } else {
                for frag in fragments {
                    let (rpc, rx) = self.rpc.register();
                    let msg = Msg::SubQuery {
                        rpc,
                        reply_to: self.id,
                        keys: frag.clone(),
                        allow_reroute: true,
                        via_guest: false,
                    };
                    if self.send(NodeId(owner), msg) {
                        trace.subqueries += 1;
                        single_waits.push((owner, frag, rpc, rx));
                    } else {
                        self.rpc.cancel(rpc);
                        stragglers.push((owner, frag));
                    }
                }
            }
        }
        trace.local.route_ns += route.elapsed().as_nanos() as u64;
        let mut merged = match own {
            Some(group) => {
                let (result, st) = self.eval_subquery_traced(&group, false);
                // Our own share ran on this very thread: its stage times
                // are local wall segments, not a fan-out contribution.
                trace.local.add(&st);
                result?
            }
            None => QueryResult::default(),
        };
        let absorb = |merged: &mut QueryResult, part: QueryResult| {
            merged.cells.extend(part.cells);
            merged.cache_hits += part.cache_hits;
            merged.derived_hits += part.derived_hits;
            merged.misses += part.misses;
            merged.rollup_hits += part.rollup_hits;
        };
        let waited = Instant::now();
        for (owner, group, rpc, rx) in single_waits {
            match self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout) {
                Ok(RpcReply::SubResult(Ok(part), st)) => {
                    trace.absorb_sub(&st);
                    absorb(&mut merged, part);
                }
                Ok(RpcReply::SubResult(Err(e), _)) if e.is_transient() => {
                    stragglers.push((owner, group));
                }
                Ok(RpcReply::SubResult(Err(e), _)) => return Err(e),
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected reply {other:?}"
                    )))
                }
                Err(RpcError::Timeout) => stragglers.push((owner, group)),
                Err(RpcError::Canceled) => {
                    return Err(ClusterError::Protocol("rpc slot canceled".into()))
                }
            }
        }
        for (owner, fragments, rpc, rx) in batch_waits {
            match self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout) {
                Ok(RpcReply::SubBatch(results, st)) => {
                    trace.absorb_sub(&st);
                    if results.len() != fragments.len() {
                        return Err(ClusterError::Protocol(format!(
                            "batch reply carried {} results for {} fragments",
                            results.len(),
                            fragments.len()
                        )));
                    }
                    // Fragments fail independently: absorb the good ones,
                    // send only the bad back through the straggler path.
                    for (frag, result) in fragments.into_iter().zip(results) {
                        match result {
                            Ok(part) => absorb(&mut merged, part),
                            Err(e) if e.is_transient() => stragglers.push((owner, frag)),
                            Err(e) => return Err(e),
                        }
                    }
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected reply {other:?}"
                    )))
                }
                Err(RpcError::Timeout) => {
                    stragglers.extend(fragments.into_iter().map(|f| (owner, f)));
                }
                Err(RpcError::Canceled) => {
                    return Err(ClusterError::Protocol("rpc slot canceled".into()))
                }
            }
        }
        trace.local.wait_ns += waited.elapsed().as_nanos() as u64;
        for (owner, group) in stragglers {
            trace.retries += 1;
            let retried = Instant::now();
            let mut acc = StageTimes::default();
            let outcome = self.subquery_rpc(owner, &group, &mut acc);
            let outcome = match outcome {
                Ok(part) => {
                    absorb(&mut merged, part);
                    Ok(())
                }
                Err(e) if e.is_transient() => {
                    // The owner is gone: recompute its share from raw
                    // storage, reading its blocks off the replica chain.
                    // Empty summaries are dropped exactly as `evaluate`
                    // drops them, so results match the fault-free path.
                    trace.failovers += 1;
                    let parts = self.gather_partials(&group, &[owner], &mut acc);
                    parts.map(|parts| {
                        merged.misses += group.len();
                        merged.cells.extend(
                            parts
                                .into_iter()
                                .filter(|(_, s)| !s.is_empty())
                                .map(|(key, summary)| Cell { key, summary }),
                        );
                    })
                }
                Err(e) => Err(e),
            };
            trace.local.retry_ns += retried.elapsed().as_nanos() as u64;
            trace.absorb_sub(&acc);
            outcome?;
        }
        let merge = Instant::now();
        merged.cells.sort_by_key(|c| c.key);
        merged.cells.dedup_by_key(|c| c.key);
        trace.local.merge_ns += merge.elapsed().as_nanos() as u64;
        Ok(merged)
    }

    /// One owner's SubQuery with deadline, bounded retries, and backoff.
    /// A [`ClusterError::RerouteRefused`] answer (stale guest route) is
    /// resent once directly to the owner with rerouting disabled.
    ///
    /// `acc` collects the remote party's stage times (on any answered
    /// attempt) plus this thread's backoff sleeps, for the trace's
    /// aggregate view.
    fn subquery_rpc(
        &self,
        owner: usize,
        keys: &[CellKey],
        acc: &mut StageTimes,
    ) -> Result<QueryResult, ClusterError> {
        let mut allow_reroute = true;
        let mut refused_once = false;
        let attempts = self.config.sub_rpc_retries + 1;
        let mut attempt = 0;
        while attempt < attempts {
            if attempt > 0 {
                let nap = self.backoff(attempt, owner as u64);
                std::thread::sleep(nap);
                acc.retry_ns += nap.as_nanos() as u64;
            }
            let (rpc, rx) = self.rpc.register();
            let msg = Msg::SubQuery {
                rpc,
                reply_to: self.id,
                keys: keys.to_vec(),
                allow_reroute,
                via_guest: false,
            };
            if !self.send(NodeId(owner), msg) {
                self.rpc.cancel(rpc);
                return Err(ClusterError::Unreachable { node: owner });
            }
            match self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout) {
                Ok(RpcReply::SubResult(result, st)) => {
                    acc.add(&st);
                    match result {
                        Ok(part) => return Ok(part),
                        Err(e @ ClusterError::RerouteRefused { .. }) => {
                            if refused_once {
                                return Err(e); // a direct send cannot be refused twice
                            }
                            refused_once = true;
                            allow_reroute = false; // resend straight to the owner
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected reply {other:?}"
                    )))
                }
                Err(RpcError::Timeout) => attempt += 1,
                Err(RpcError::Canceled) => {
                    return Err(ClusterError::Protocol("rpc slot canceled".into()))
                }
            }
        }
        Err(ClusterError::Timeout {
            node: owner,
            op: "subquery",
        })
    }

    /// One owner's FetchPartials with deadline, bounded retries, backoff.
    /// `acc` collects the responder's stage times and backoff sleeps.
    fn fetch_partials_rpc(
        &self,
        owner: usize,
        keys: &[CellKey],
        exclude: &[usize],
        acc: &mut StageTimes,
    ) -> Result<Vec<(CellKey, CellSummary)>, ClusterError> {
        let attempts = self.config.sub_rpc_retries + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                let nap = self.backoff(attempt, owner as u64 ^ 0xF00D);
                std::thread::sleep(nap);
                acc.retry_ns += nap.as_nanos() as u64;
            }
            let (rpc, rx) = self.rpc.register();
            let msg = Msg::FetchPartials {
                rpc,
                reply_to: self.id,
                keys: keys.to_vec(),
                exclude: exclude.to_vec(),
            };
            if !self.send(NodeId(owner), msg) {
                self.rpc.cancel(rpc);
                return Err(ClusterError::Unreachable { node: owner });
            }
            match self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout) {
                Ok(RpcReply::Partials(result, st)) => {
                    acc.add(&st);
                    match result {
                        Ok(parts) => return Ok(parts),
                        Err(e) => return Err(e),
                    }
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol(format!(
                        "unexpected reply {other:?}"
                    )))
                }
                Err(RpcError::Timeout) => continue,
                Err(RpcError::Canceled) => {
                    return Err(ClusterError::Protocol("rpc slot canceled".into()))
                }
            }
        }
        Err(ClusterError::Timeout {
            node: owner,
            op: "partials",
        })
    }

    /// Exponential backoff with deterministic jitter. Jitter is a pure hash
    /// of (node, salt, attempt) so replayed fault schedules see identical
    /// retry timing — the chaos suite depends on it.
    fn backoff(&self, attempt: u32, salt: u64) -> std::time::Duration {
        let exp = self
            .config
            .retry_backoff
            .saturating_mul(1 << (attempt - 1).min(4));
        let mut x = (self.node_idx as u64)
            ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((attempt as u64) << 32);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        exp + exp.mul_f64((x % 1024) as f64 / 2048.0)
    }

    // -- Owner role ------------------------------------------------------------

    /// Evaluate owned keys against the local (or guest) STASH graph; misses
    /// fall through to block scans, possibly on peer partitions.
    /// `pub(crate)` so [`crate::cluster::SimCluster`] can pre-warm graphs
    /// for the zoom experiments without timing a client round-trip.
    pub(crate) fn eval_subquery(
        self: &Arc<Self>,
        keys: &[CellKey],
        via_guest: bool,
    ) -> Result<QueryResult, ClusterError> {
        self.eval_subquery_traced(keys, via_guest).0
    }

    /// [`NodeCtx::eval_subquery`] with per-stage timings. The evaluator's
    /// DFS span covers the whole fetch wall, including wire time and retry
    /// sleeps of any cross-node gathers; those shares are reclassified out
    /// of `dfs_ns` here so the stages stay disjoint.
    pub(crate) fn eval_subquery_traced(
        self: &Arc<Self>,
        keys: &[CellKey],
        via_guest: bool,
    ) -> (Result<QueryResult, ClusterError>, StageTimes) {
        let graph = if via_guest { &self.guest } else { &self.graph };
        let mut st = StageTimes::default();
        if via_guest {
            // A rerouted subquery whose Cells were purged (or never hosted)
            // is refused — the coordinator resends to the owner directly.
            // Serving it here would silently grow the guest graph with
            // Cells nobody handed off.
            if !self.guestbook.lock().hosts_any(keys) {
                self.obs.inc("handoff.guest.refuse");
                return (
                    Err(ClusterError::RerouteRefused {
                        helper: self.node_idx,
                    }),
                    st,
                );
            }
            self.stats.guest_serves.fetch_add(1, Ordering::Relaxed);
            self.obs.inc("handoff.guest.serve");
            self.guestbook.lock().touch(keys, self.clock.now());
        } else if let Some(rollup) = &self.rollup {
            // Rollup fast path (DESIGN.md §17): when every requested key is
            // at a rollup level with its bin fully under the watermark, the
            // materialized rollup Cells ARE the answer — always fresh
            // (every applied append folded its delta in), bit-for-bit equal
            // to a cold recompute, and reached without touching the graph
            // or any raw block. All-or-nothing per sub-query, so a mixed
            // key set keeps a single authority.
            if let Some(served) = rollup.serve(keys) {
                self.obs.inc("rollup.serves");
                self.obs.counter("rollup.cells").add(served.len() as u64);
                let result = QueryResult {
                    cells: served
                        .into_iter()
                        .map(|(key, summary)| Cell { key, summary })
                        .collect(),
                    rollup_hits: keys.len(),
                    ..QueryResult::default()
                };
                // The per-Cell serve cost is the same as a graph serve:
                // lookup, merge, serialization (DESIGN.md §2).
                let serve = self.config.cell_service_cost * keys.len() as u32;
                if serve > Duration::ZERO {
                    std::thread::sleep(serve);
                    st.merge_ns += serve.as_nanos() as u64;
                }
                return (Ok(result), st);
            }
        }
        let this = Arc::clone(self);
        let gather_acc = Arc::new(Mutex::new(StageTimes::default()));
        let fetch_acc = Arc::clone(&gather_acc);
        let fetch = move |missing: &[CellKey]| {
            let mut acc = StageTimes::default();
            let cells = this.gather_partials_as_cells(missing, &mut acc);
            fetch_acc.lock().add(&acc);
            cells
        };
        let epoch0 = self.ingest_epoch.load(Ordering::SeqCst);
        let result = match evaluate_traced(graph, keys, &fetch) {
            Ok((part, times)) => {
                st.add(&times);
                Ok(part)
            }
            Err(stash_core::EvalError::Query(q)) => Err(ClusterError::BadQuery(q.to_string())),
            Err(stash_core::EvalError::Fetch(msg)) => Err(ClusterError::Storage(msg)),
        };
        // Ingest fence: if an append apply or invalidation overlapped this
        // evaluation (epoch moved, or an apply was mid-flight when we
        // started), any cells the evaluation cached may predate the newest
        // rows — or have been delta-patched *after* we fetched them from
        // storage, double-counting the batch in the cached copy. The
        // *returned* result is untouched (it was correct when read);
        // conservatively re-staling the requested keys makes the next
        // access recompute instead of trusting a racy cache fill.
        if self.ingest_epoch.load(Ordering::SeqCst) != epoch0 || epoch0 & 1 == 1 {
            graph.mark_stale_keys(keys);
            self.obs.inc("ingest.eval_raced");
        }
        let acc = *gather_acc.lock();
        st.dfs_ns = st.dfs_ns.saturating_sub(acc.wire_ns + acc.retry_ns);
        st.wire_ns += acc.wire_ns;
        st.retry_ns += acc.retry_ns;
        // Modeled serve cost: lookup/merge/serialize per Cell on the
        // paper's hardware, charged as virtual time (DESIGN.md §2).
        let serve = self.config.cell_service_cost * keys.len() as u32;
        if serve > Duration::ZERO {
            std::thread::sleep(serve);
            st.merge_ns += serve.as_nanos() as u64;
        }
        (result, st)
    }

    // -- Live ingest (DESIGN.md §13) ---------------------------------------------

    /// Apply one ingest batch: append to storage, then either delta-patch
    /// this node's resident Cells (merging the batch's per-Cell partials
    /// into cached summaries, PLM untouched) or mark them stale, and
    /// finally broadcast the affected keys to every live peer. The ack is
    /// positive only when storage accepted the batch *and* every reachable
    /// peer confirmed invalidation — so a producer that has drained its
    /// acks knows no cache in the cluster still serves pre-batch data.
    ///
    /// Retried batches ([`AppendOutcome::Duplicate`]) skip the patch (the
    /// delta was already merged once) but re-broadcast invalidations: the
    /// usual reason for a retry is a lost ack or an incomplete broadcast.
    fn apply_append(
        self: &Arc<Self>,
        rpc: u64,
        reply_to: NodeId,
        block: BlockKey,
        seq: u64,
        rows: Vec<Observation>,
        last: bool,
    ) {
        let affected = affected_keys(&rows);
        let apply = self.ingest_apply.lock();
        // Open the parity window (see `ingest_epoch`) before storage
        // changes; close it only after the local patch/stale pass.
        self.ingest_epoch.fetch_add(1, Ordering::SeqCst);
        let outcome = self.store.append_block(block, seq, &rows);
        if let AppendOutcome::Applied { .. } = outcome {
            self.obs.counter("ingest.rows").add(rows.len() as u64);
            self.obs.inc("ingest.batches");
            if self.config.ingest_patch {
                // Deltas for every affected level in one kernel pass over
                // just the batch rows (stage-2/3 of the columnar kernel).
                let res = frame_spatial_res(self.store.block_len(), &affected);
                let frame = BlockFrame::decode(block, &rows, self.config.n_attrs, res);
                let mut patched = 0u64;
                let mut unpatched = Vec::new();
                // Deltas carry sketch partials when sketches are on, so a
                // patch merges estimator state exactly as a cold rebuild
                // would fold it — resident Cells never silently degrade to
                // exact-only under live ingest.
                let sketch = &self.config.stash.sketch;
                let deltas = frame.aggregate_with(&affected, sketch).cells;
                // Fold once, patch both: `affected` spans all 48 levels,
                // so the same kernel output carries the rollup-level
                // deltas — the rollup's seq guard makes the fold exactly
                // once under retries and owner failover (DESIGN.md §17).
                if let Some(rollup) = &self.rollup {
                    if rollup.fold(block, seq, &deltas) {
                        self.obs.inc("rollup.folds");
                    }
                }
                for (key, delta) in deltas {
                    if self.graph.patch(&key, &delta) {
                        patched += 1;
                    } else {
                        unpatched.push(key);
                    }
                }
                if sketch.enabled && patched > 0 {
                    self.obs
                        .counter("sketch.merges")
                        .add(patched * self.config.n_attrs as u64);
                }
                // Cells we could not patch (absent or already stale) plus
                // all guest replicas go stale; fresh guest copies are not
                // patched because their home node patches independently
                // and the guestbook's freshness bookkeeping is the home's.
                let invalidated =
                    self.graph.mark_stale_keys(&unpatched) + self.guest.mark_stale_keys(&affected);
                self.obs.counter("ingest.cells_patched").add(patched);
                self.obs
                    .counter("ingest.cells_invalidated")
                    .add(invalidated as u64);
            } else {
                // Ablation: invalidate everything the batch touched. The
                // rollup still folds — it is not a cache, and its
                // correctness contract (fresh under the watermark) holds in
                // every mode the policy allows.
                if let Some(rollup) = &self.rollup {
                    let res = frame_spatial_res(self.store.block_len(), &affected);
                    let frame = BlockFrame::decode(block, &rows, self.config.n_attrs, res);
                    let deltas = frame
                        .aggregate_with(&affected, &self.config.stash.sketch)
                        .cells;
                    if rollup.fold(block, seq, &deltas) {
                        self.obs.inc("rollup.folds");
                    }
                }
                let invalidated =
                    self.graph.mark_stale_keys(&affected) + self.guest.mark_stale_keys(&affected);
                self.obs
                    .counter("ingest.cells_invalidated")
                    .add(invalidated as u64);
            }
        }
        // Seal on the block's final batch — on Duplicate too: the usual
        // duplicate cause is a retry whose ack was lost after the batch
        // (and possibly the seal) landed, and sealing is idempotent.
        if last
            && matches!(
                outcome,
                AppendOutcome::Applied { .. } | AppendOutcome::Duplicate
            )
        {
            if let Some(rollup) = &self.rollup {
                rollup.seal(block);
                self.obs.inc("rollup.seals");
            }
        }
        self.ingest_epoch.fetch_add(1, Ordering::SeqCst);
        drop(apply);
        let applied = match outcome {
            AppendOutcome::Applied { .. } | AppendOutcome::Duplicate => {
                self.broadcast_invalidate(&affected)
            }
            AppendOutcome::OutOfOrder | AppendOutcome::Unsupported => {
                self.obs.inc("ingest.rejected");
                false
            }
        };
        let _ = self.send(reply_to, Msg::AppendAck { rpc, applied });
    }

    /// Tell every live peer to stale its cached copies of `keys` and wait
    /// for all acks (peers answer inline on their main threads, so this
    /// service-tier block cannot deadlock). Crashed peers — the fabric
    /// refuses the send — are skipped: their graphs died with them, and a
    /// restarted node boots empty. Returns whether every reachable peer
    /// confirmed.
    fn broadcast_invalidate(&self, keys: &[CellKey]) -> bool {
        let n_nodes = self.store.partitioner().n_nodes();
        let mut waits = Vec::new();
        for peer in (0..n_nodes).filter(|&p| p != self.node_idx) {
            let (rpc, rx) = self.rpc.register();
            let msg = Msg::Invalidate {
                rpc,
                reply_to: self.id,
                keys: keys.to_vec(),
            };
            if self.send(NodeId(peer), msg) {
                waits.push((peer, rpc, rx));
            } else {
                self.rpc.cancel(rpc);
            }
        }
        let mut all_ok = true;
        for (peer, rpc, rx) in waits {
            let ok = matches!(
                self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout),
                Ok(RpcReply::Ack(_))
            ) || self.invalidate_peer_with_retries(peer, keys);
            all_ok &= ok;
        }
        if !all_ok {
            self.obs.inc("ingest.invalidate.incomplete");
        }
        all_ok
    }

    /// Patient per-peer invalidation retry. A missed invalidation is a
    /// correctness hazard (a stale summary would keep serving as fresh),
    /// so this leans harder on retries than the query path — the producer
    /// is blocked on the batch ack anyway.
    fn invalidate_peer_with_retries(&self, peer: usize, keys: &[CellKey]) -> bool {
        let attempts = (self.config.sub_rpc_retries + 1).max(6);
        for attempt in 1..=attempts {
            std::thread::sleep(self.backoff(attempt, peer as u64 ^ 0x1A55));
            let (rpc, rx) = self.rpc.register();
            let msg = Msg::Invalidate {
                rpc,
                reply_to: self.id,
                keys: keys.to_vec(),
            };
            if !self.send(NodeId(peer), msg) {
                self.rpc.cancel(rpc);
                return true; // peer crashed: nothing left to invalidate
            }
            if matches!(
                self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout),
                Ok(RpcReply::Ack(_))
            ) {
                return true;
            }
        }
        false
    }

    // -- Storage scatter/gather -------------------------------------------------

    /// Complete summaries for `keys` by merging per-partition partials
    /// (local scan for owned blocks, one forwarded FetchPartials hop for
    /// blocks on peers — the paper's "up to one query forwarding", §IV-D).
    ///
    /// `base_exclude` seeds the dead-node set for failover reads; owners
    /// that stay unreachable after retries are added to it and the whole
    /// gather replans, walking each dead node's blocks down the DFS replica
    /// chain. Merged answers are exact as long as any replica survives.
    fn gather_partials(
        self: &Arc<Self>,
        keys: &[CellKey],
        base_exclude: &[usize],
        acc: &mut StageTimes,
    ) -> Result<Vec<(CellKey, CellSummary)>, ClusterError> {
        let mut exclude = base_exclude.to_vec();
        let n_nodes = self.store.partitioner().n_nodes();
        loop {
            match self.try_gather(keys, &exclude, acc) {
                Ok(out) => return Ok(out),
                Err(GatherFailure::Owner(node, err)) => {
                    if exclude.contains(&node) || exclude.len() + 1 >= n_nodes {
                        return Err(err); // replica chain exhausted
                    }
                    exclude.push(node);
                }
                Err(GatherFailure::Fatal(err)) => return Err(err),
            }
        }
    }

    /// One gather round under a fixed exclusion set. An unreachable owner
    /// aborts the round with [`GatherFailure::Owner`] so the caller can
    /// grow the exclusion and replan.
    fn try_gather(
        self: &Arc<Self>,
        keys: &[CellKey],
        exclude: &[usize],
        acc: &mut StageTimes,
    ) -> Result<Vec<(CellKey, CellSummary)>, GatherFailure> {
        // Which nodes effectively own blocks relevant to these keys?
        let plan = plan_blocks(
            keys,
            self.store.block_len(),
            self.store.data_bbox(),
            self.store.data_time(),
            self.config.stash.max_blocks_per_fetch,
        )
        .map_err(|e| GatherFailure::Fatal(ClusterError::Storage(e.to_string())))?;
        let mut owners: Vec<usize> = plan
            .keys()
            .map(|bk| {
                self.store
                    .partitioner()
                    .owner_excluding(bk.geohash, exclude)
            })
            .collect();
        owners.sort_unstable();
        owners.dedup();

        let mut waits = Vec::new();
        let mut local: Vec<(CellKey, CellSummary)> = Vec::new();
        for owner in owners {
            if owner == self.node_idx {
                let scan = Instant::now();
                local = self
                    .store
                    .fetch_partials_excluding(keys, exclude)
                    .map(|v| v.into_iter().map(|p| (p.key, p.summary)).collect())
                    .map_err(|e| GatherFailure::Fatal(ClusterError::Storage(e.to_string())))?;
                acc.dfs_ns += scan.elapsed().as_nanos() as u64;
            } else {
                let (rpc, rx) = self.rpc.register();
                let msg = Msg::FetchPartials {
                    rpc,
                    reply_to: self.id,
                    keys: keys.to_vec(),
                    exclude: exclude.to_vec(),
                };
                if self.send(NodeId(owner), msg) {
                    waits.push((owner, rpc, rx));
                } else {
                    self.rpc.cancel(rpc);
                    // Keep draining nothing — abort now; peers' replies for
                    // this round land in removed slots and are dropped.
                    return Err(GatherFailure::Owner(
                        owner,
                        ClusterError::Unreachable { node: owner },
                    ));
                }
            }
        }
        // Merge partials per key; keys with no observations end up with an
        // empty summary (a valid "computed, empty" answer).
        let n_attrs = self.config.n_attrs;
        let mut merged: HashMap<CellKey, CellSummary> = keys
            .iter()
            .map(|&k| (k, CellSummary::empty(n_attrs)))
            .collect();
        let mut sketch_merges = 0u64;
        absorb_fragment(&mut merged, &mut sketch_merges, local)?;
        let mut dead: Option<(usize, ClusterError)> = None;
        for (owner, rpc, rx) in waits {
            match self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout) {
                Ok(RpcReply::Partials(Ok(parts), st)) => {
                    acc.add(&st);
                    absorb_fragment(&mut merged, &mut sketch_merges, parts)?;
                }
                Ok(RpcReply::Partials(Err(e), _)) => return Err(GatherFailure::Fatal(e)),
                Ok(other) => {
                    return Err(GatherFailure::Fatal(ClusterError::Protocol(format!(
                        "unexpected reply {other:?}"
                    ))))
                }
                Err(RpcError::Timeout) => {
                    // Retry this owner alone before declaring it dead; keep
                    // draining the other waits either way.
                    if dead.is_none() {
                        match self.fetch_partials_rpc(owner, keys, exclude, acc) {
                            Ok(parts) => absorb_fragment(&mut merged, &mut sketch_merges, parts)?,
                            Err(e) if e.is_transient() => dead = Some((owner, e)),
                            Err(e) => return Err(GatherFailure::Fatal(e)),
                        }
                    }
                }
                Err(RpcError::Canceled) => {
                    return Err(GatherFailure::Fatal(ClusterError::Protocol(
                        "rpc slot canceled".into(),
                    )))
                }
            }
        }
        if let Some((node, err)) = dead {
            return Err(GatherFailure::Owner(node, err));
        }
        if sketch_merges > 0 {
            self.obs.counter("sketch.merges").add(sketch_merges);
        }
        let mut out: Vec<(CellKey, CellSummary)> = merged.into_iter().collect();
        out.sort_by_key(|(k, _)| *k);
        Ok(out)
    }

    /// [`gather_partials`] shaped for the evaluator's fetch contract. The
    /// evaluator's `FetchFn` is stringly typed (it belongs to the core
    /// layer); by this point retries and failover are already exhausted, so
    /// whatever error remains is final either way.
    fn gather_partials_as_cells(
        self: &Arc<Self>,
        keys: &[CellKey],
        acc: &mut StageTimes,
    ) -> Result<Vec<Cell>, String> {
        Ok(self
            .gather_partials(keys, &[], acc)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(|(key, summary)| Cell { key, summary })
            .collect())
    }

    // -- Hotspot handling ---------------------------------------------------------

    fn maybe_start_handoff(self: &Arc<Self>) {
        if self.config.mode != Mode::Stash || !self.config.enable_replication {
            return;
        }
        if !self.is_hotspotted() {
            return;
        }
        if self.clock.now() < self.cooldown_until.load(Ordering::Relaxed) {
            return;
        }
        if self.handoff_inflight.swap(true, Ordering::AcqRel) {
            return; // one at a time
        }
        let this = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("stash-handoff-{}", self.node_idx))
            .spawn(move || {
                this.run_handoff();
                this.cooldown_until.store(
                    this.clock.now() + this.config.stash.cooldown_ticks,
                    Ordering::Relaxed,
                );
                this.handoff_inflight.store(false, Ordering::Release);
            })
            .expect("spawn handoff thread");
    }

    /// The Clique Handoff of Fig. 5: find hottest Cliques, pick antipode
    /// helpers, Distress → Replicate → record routes.
    fn run_handoff(self: &Arc<Self>) {
        let level = Level::from_index(self.hot_level.load(Ordering::Relaxed))
            .unwrap_or_else(|_| Level::of(4, stash_geo::TemporalRes::Day).expect("static level"));
        let finder = CliqueFinder::new(self.config.stash.clique_depth);
        let cliques = finder.top_cliques(
            &self.graph,
            level,
            self.config.stash.max_replicable_cells,
            self.config.stash.top_k_cliques,
        );
        const MAX_ATTEMPTS: u64 = 5;
        for clique in cliques {
            if clique.members.is_empty() {
                continue;
            }
            for attempt in 0..MAX_ATTEMPTS {
                let helper = match self.config.stash.helper_selection {
                    stash_core::HelperSelection::Antipode => self
                        .store
                        .partitioner()
                        .owner(clique.helper_region(attempt)),
                    stash_core::HelperSelection::Random => {
                        // Ablation: any other node, pseudo-randomly.
                        let n = self.store.partitioner().n_nodes();
                        (self.node_idx
                            + 1
                            + (clique.root.dense_id().wrapping_add(attempt) % (n as u64 - 1).max(1))
                                as usize)
                            % n
                    }
                };
                if helper == self.node_idx {
                    continue;
                }
                self.obs.inc("handoff.attempt");
                if self.try_replicate_to(&clique, helper) {
                    self.stats.handoffs.fetch_add(1, Ordering::Relaxed);
                    self.obs.inc("handoff.ok");
                    break;
                }
            }
        }
        // Housekeeping while we're here.
        self.routing
            .lock()
            .purge_expired(self.clock.now(), self.config.stash.routing_ttl_ticks);
    }

    fn try_replicate_to(self: &Arc<Self>, clique: &stash_core::Clique, helper: usize) -> bool {
        // Step 3: Distress Request / acknowledgement.
        let (rpc, rx) = self.rpc.register();
        if !self.send(
            NodeId(helper),
            Msg::Distress {
                rpc,
                reply_to: self.id,
                n_cells: clique.size(),
            },
        ) {
            self.rpc.cancel(rpc);
            return false;
        }
        match self.rpc.wait(rpc, &rx, self.config.distress_timeout) {
            Ok(RpcReply::Ack(true)) => {}
            Ok(RpcReply::Ack(false)) => {
                self.obs.inc("handoff.declined");
                return false;
            }
            _ => return false,
        }
        // Step 4: Replication Request / Response.
        let snapshot = self.graph.snapshot(&clique.members);
        if snapshot.is_empty() {
            return false;
        }
        let replicated: Vec<CellKey> = snapshot.iter().map(|(c, _)| c.key).collect();
        let (rpc, rx) = self.rpc.register();
        if !self.send(
            NodeId(helper),
            Msg::ReplicationRequest {
                rpc,
                reply_to: self.id,
                src_node: self.node_idx,
                cells: snapshot,
            },
        ) {
            self.rpc.cancel(rpc);
            return false;
        }
        match self.rpc.wait(rpc, &rx, self.config.sub_rpc_timeout) {
            Ok(RpcReply::Ack(true)) => {
                // Step 5: routing table population.
                self.routing
                    .lock()
                    .insert(clique.root, helper, &replicated, self.clock.now());
                true
            }
            _ => false,
        }
    }

    /// Helper side of replication: stash the Cells in the guest graph.
    fn accept_replicas(self: &Arc<Self>, src_node: usize, cells: Vec<(Cell, f64)>) -> bool {
        let mut gb = self.guestbook.lock();
        if !gb.can_accommodate(cells.len(), self.config.stash.guest_max_cells) {
            return false;
        }
        gb.record(cells.iter().map(|(c, _)| c.key), src_node, self.clock.now());
        drop(gb);
        for (cell, freshness) in cells {
            self.guest.insert_with_freshness(cell, freshness);
        }
        self.stats.replicas_hosted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Periodic housekeeping: purge idle guest Cells and expired routes
    /// (§VII-D).
    fn maintain(self: &Arc<Self>) {
        let now = self.clock.now();
        if !now.is_multiple_of(64) {
            return;
        }
        let expired = self
            .guestbook
            .lock()
            .expired(now, self.config.stash.guest_ttl_ticks);
        if !expired.is_empty() {
            self.guest.remove_many(&expired);
            self.guestbook.lock().forget(&expired);
        }
        self.routing
            .lock()
            .purge_expired(now, self.config.stash.routing_ttl_ticks);
    }
}

/// The invalidation set of one append batch: every Cell key, at every one
/// of the 48 (spatial × temporal) levels, that contains at least one of the
/// batch's rows — deduplicated and sorted for deterministic wire payloads.
pub(crate) fn affected_keys(rows: &[Observation]) -> Vec<CellKey> {
    let mut set: HashSet<CellKey> = HashSet::new();
    for obs in rows {
        for t_res in TemporalRes::ALL {
            for s_res in 1..=MAX_SPATIAL_RES {
                if let Some(key) = obs.cell_key(s_res, t_res) {
                    set.insert(key);
                }
            }
        }
    }
    let mut keys: Vec<CellKey> = set.into_iter().collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_model::level::NUM_LEVELS;

    #[test]
    fn affected_keys_covers_every_level_once() {
        let obs = Observation::new(
            37.7749,
            -122.4194,
            epoch_seconds(2015, 3, 9, 14, 0, 0),
            vec![1.0, 2.0, 3.0, 4.0],
        );
        let keys = affected_keys(std::slice::from_ref(&obs));
        assert_eq!(keys.len(), NUM_LEVELS, "one key per level for one row");
        for k in &keys {
            assert!(k.geohash.bbox().contains(obs.lat, obs.lon));
            assert!(k.time.range().contains(obs.time));
        }
        // Two rows in the same fine cell add nothing new.
        let twice = affected_keys(&[obs.clone(), obs]);
        assert_eq!(twice.len(), NUM_LEVELS);
    }

    /// Regression: a partials fragment whose sketches were built by a peer
    /// running different sketch parameters used to panic the gathering
    /// node inside `AttrSketches::merge`. It must instead surface as a
    /// typed [`ClusterError::Protocol`] and leave the accumulator intact —
    /// exercised through the real wire form ([`FlatPartials`]), exactly as
    /// a `PartialsResponse` arrives.
    #[test]
    fn gather_refuses_wire_fragment_with_mismatched_sketch_config() {
        use stash_geo::{TemporalRes, TimeBin};
        use stash_model::SketchSpec;
        use std::str::FromStr;

        let key = CellKey::new(
            stash_geo::Geohash::from_str("9q8").unwrap(),
            TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        );
        let spec = SketchSpec::standard();
        let mut peer_spec = spec.clone();
        peer_spec.cm_depth += 1; // a stale peer with different parameters

        let summary = |spec: &SketchSpec, row: &[f64]| {
            let mut s = CellSummary::empty(row.len());
            s.ensure_sketches(spec);
            s.push_row(row);
            s
        };
        let seed = summary(&spec, &[1.0, 2.0]);
        let mut merged: HashMap<CellKey, CellSummary> = [(key, seed.clone())].into_iter().collect();
        let wire = |s: CellSummary| FlatPartials::encode(&[(key, s)]).decode().unwrap();

        let mut sketch_merges = 0u64;
        let err = absorb_fragment(
            &mut merged,
            &mut sketch_merges,
            wire(summary(&peer_spec, &[3.0, 4.0])),
        )
        .unwrap_err();
        match err {
            GatherFailure::Fatal(ClusterError::Protocol(msg)) => {
                assert!(msg.contains("sketch config mismatch"), "got: {msg}");
            }
            other => panic!("expected a Protocol error, got {other:?}"),
        }
        assert_eq!(merged[&key], seed, "refused fragment must not be applied");
        assert_eq!(sketch_merges, 0);

        // The same fragment built with matching parameters absorbs fine.
        absorb_fragment(
            &mut merged,
            &mut sketch_merges,
            wire(summary(&spec, &[3.0, 4.0])),
        )
        .unwrap();
        assert_eq!(merged[&key].count(), 2, "both rows merged");
        assert_eq!(sketch_merges, 2, "one pairwise sketch merge per attr");
    }
}
