//! Adapters: the deterministic NAM generator as a DFS block source.
//!
//! [`GenBlockSource`] is the sealed "disk contents" of every simulated
//! Galileo node: reading a block materializes its observations from the
//! seeded generator, so the cluster behaves as if a full dataset were
//! resident without storing it (DESIGN.md §2).
//!
//! [`LiveSource`] is the appendable variant for live-ingest clusters
//! (DESIGN.md §13): a configured set of *live* blocks starts truncated to
//! the first `base_fraction` of its generated rows and grows through
//! [`BlockSource::append`]; every other block serves its full generated
//! contents, so the rest of the domain is indistinguishable from a sealed
//! cluster. One `Arc<LiveSource>` is shared by every node — like
//! `GenBlockSource`, it models replicated storage any node can read (and,
//! during owner failover, write).

use parking_lot::RwLock;
use stash_data::NamGenerator;
use stash_dfs::{AppendOutcome, BlockFrame, BlockKey, BlockSource, FrameBuilder};
use stash_geo::{Geohash, TimeBin};
use stash_model::Observation;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Stream one generated block-day straight into a flat frame: no
/// `Vec<Observation>` and no per-row `Vec<f64>` — the generator's reused
/// value buffer feeds the builder row by row.
fn build_frame(generator: &NamGenerator, key: BlockKey, spatial_res: u8) -> BlockFrame {
    let n = generator.obs_per_day(key.geohash);
    let mut b = FrameBuilder::new(key, n, generator.schema().len(), spatial_res);
    generator.scan_rows(key.geohash, key.day, |lat, lon, time, values| {
        b.push_row(lat, lon, time, values);
    });
    b.finish()
}

/// [`BlockSource`] backed by a [`NamGenerator`].
///
/// Retention (DESIGN.md §17) is modeled with shared tombstones: a retired
/// block reads as empty with version `u64::MAX`, so decoded-frame caches
/// tagged with an older version lazily miss instead of serving dropped
/// data. Clones share the tombstone set — like the generator itself, the
/// source models one replicated storage layer.
#[derive(Debug, Clone)]
pub struct GenBlockSource {
    generator: NamGenerator,
    retired: Arc<RwLock<HashSet<BlockKey>>>,
}

impl GenBlockSource {
    pub fn new(generator: NamGenerator) -> Self {
        GenBlockSource {
            generator,
            retired: Arc::new(RwLock::new(HashSet::new())),
        }
    }

    pub fn generator(&self) -> &NamGenerator {
        &self.generator
    }

    fn is_retired(&self, key: BlockKey) -> bool {
        self.retired.read().contains(&key)
    }
}

impl BlockSource for GenBlockSource {
    fn read_block(&self, key: BlockKey) -> Vec<Observation> {
        if self.is_retired(key) {
            return Vec::new();
        }
        self.generator.block_for_day(key.geohash, key.day)
    }

    fn block_bytes(&self, geohash: Geohash) -> usize {
        self.generator.block_bytes(geohash)
    }

    fn n_attrs(&self) -> usize {
        self.generator.schema().len()
    }

    fn block_version(&self, key: BlockKey) -> u64 {
        if self.is_retired(key) {
            u64::MAX
        } else {
            0
        }
    }

    fn read_block_versioned(&self, key: BlockKey) -> (Vec<Observation>, u64) {
        if self.is_retired(key) {
            return (Vec::new(), u64::MAX);
        }
        (self.generator.block_for_day(key.geohash, key.day), 0)
    }

    /// Sealed generated blocks stream rows straight into the flat frame,
    /// skipping the `Vec<Observation>` the default route materializes.
    fn read_frame(&self, key: BlockKey, spatial_res: u8) -> BlockFrame {
        if self.is_retired(key) {
            return BlockFrame::decode(key, &[], self.n_attrs(), spatial_res)
                .with_version(u64::MAX);
        }
        build_frame(&self.generator, key, spatial_res)
    }

    fn retire(&self, key: BlockKey) -> bool {
        self.retired.write().insert(key)
    }
}

#[derive(Debug)]
struct Overlay {
    /// Applied batch count == next expected `seq` == block version.
    version: u64,
    rows: Vec<Observation>,
}

/// Appendable [`BlockSource`] for live-ingest clusters.
///
/// Blocks in the `live` set boot truncated to `base_fraction` of their
/// generated rows and grow via [`BlockSource::append`]; all other blocks
/// serve their full generated contents (version 0, sealed). Appends are
/// idempotent per the `BlockSource` seq contract, which is what makes
/// producer retries and owner failover safe: any node may apply a batch to
/// the shared storage, and a re-sent batch is a no-op `Duplicate`.
#[derive(Debug)]
pub struct LiveSource {
    generator: NamGenerator,
    base_fraction: f64,
    live: HashSet<BlockKey>,
    overlays: RwLock<HashMap<BlockKey, Overlay>>,
    /// Blocks dropped under retention (DESIGN.md §17): they read as empty
    /// with version `u64::MAX` and reject further appends.
    retired: RwLock<HashSet<BlockKey>>,
}

impl LiveSource {
    pub fn new(
        generator: NamGenerator,
        live_blocks: impl IntoIterator<Item = (Geohash, TimeBin)>,
        base_fraction: f64,
    ) -> Self {
        let live = live_blocks
            .into_iter()
            .map(|(geohash, day)| BlockKey { geohash, day })
            .collect();
        LiveSource {
            generator,
            base_fraction: base_fraction.clamp(0.0, 1.0),
            live,
            overlays: RwLock::new(HashMap::new()),
            retired: RwLock::new(HashSet::new()),
        }
    }

    fn is_retired(&self, key: BlockKey) -> bool {
        self.retired.read().contains(&key)
    }

    pub fn generator(&self) -> &NamGenerator {
        &self.generator
    }

    pub fn is_live(&self, key: BlockKey) -> bool {
        self.live.contains(&key)
    }

    /// Rows appended so far across all live blocks (for tests/benches).
    pub fn appended_rows(&self) -> usize {
        self.overlays.read().values().map(|o| o.rows.len()).sum()
    }
}

impl BlockSource for LiveSource {
    fn read_block(&self, key: BlockKey) -> Vec<Observation> {
        self.read_block_versioned(key).0
    }

    fn block_bytes(&self, geohash: Geohash) -> usize {
        // Disk-model sizing stays the sealed-block size: live blocks are
        // *at most* this big, and a stable cost keeps ablations comparable.
        self.generator.block_bytes(geohash)
    }

    fn n_attrs(&self) -> usize {
        self.generator.schema().len()
    }

    fn block_version(&self, key: BlockKey) -> u64 {
        if self.is_retired(key) {
            return u64::MAX;
        }
        if !self.is_live(key) {
            return 0;
        }
        self.overlays.read().get(&key).map_or(0, |o| o.version)
    }

    fn read_block_versioned(&self, key: BlockKey) -> (Vec<Observation>, u64) {
        if self.is_retired(key) {
            return (Vec::new(), u64::MAX);
        }
        if !self.is_live(key) {
            return (self.generator.block_for_day(key.geohash, key.day), 0);
        }
        let mut rows = self
            .generator
            .base_rows(key.geohash, key.day, self.base_fraction);
        // Rows and version under one read lock: the tag always matches.
        let overlays = self.overlays.read();
        match overlays.get(&key) {
            Some(o) => {
                rows.extend(o.rows.iter().cloned());
                (rows, o.version)
            }
            None => (rows, 0),
        }
    }

    /// Sealed blocks stream from the generator like [`GenBlockSource`];
    /// live blocks (truncated base + mutable overlay) keep the row-struct
    /// oracle route, whose version tagging is already lock-consistent.
    fn read_frame(&self, key: BlockKey, spatial_res: u8) -> BlockFrame {
        if !self.is_live(key) && !self.is_retired(key) {
            return build_frame(&self.generator, key, spatial_res);
        }
        let (observations, version) = self.read_block_versioned(key);
        BlockFrame::decode(key, &observations, self.n_attrs(), spatial_res).with_version(version)
    }

    fn append(&self, key: BlockKey, seq: u64, rows: &[Observation]) -> AppendOutcome {
        if !self.is_live(key) || self.is_retired(key) {
            return AppendOutcome::Unsupported;
        }
        let mut overlays = self.overlays.write();
        let o = overlays.entry(key).or_insert_with(|| Overlay {
            version: 0,
            rows: Vec::new(),
        });
        match seq.cmp(&o.version) {
            std::cmp::Ordering::Less => AppendOutcome::Duplicate,
            std::cmp::Ordering::Greater => AppendOutcome::OutOfOrder,
            std::cmp::Ordering::Equal => {
                o.rows.extend(rows.iter().cloned());
                o.version += 1;
                AppendOutcome::Applied { version: o.version }
            }
        }
    }

    fn retire(&self, key: BlockKey) -> bool {
        let fresh = self.retired.write().insert(key);
        if fresh {
            // Release the overlay rows too — retention's whole point is
            // bounding resident raw data.
            self.overlays.write().remove(&key);
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_data::GeneratorConfig;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{TemporalRes, TimeBin};
    use std::str::FromStr;

    #[test]
    fn adapter_delegates_to_generator() {
        let gen = NamGenerator::new(GeneratorConfig::default());
        let src = GenBlockSource::new(gen.clone());
        let bk = BlockKey {
            geohash: Geohash::from_str("9xj").unwrap(),
            day: TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        };
        assert_eq!(src.read_block(bk), gen.block_for_day(bk.geohash, bk.day));
        assert_eq!(src.block_bytes(bk.geohash), gen.block_bytes(bk.geohash));
        assert_eq!(src.n_attrs(), 4);
    }

    fn live_fixture() -> (LiveSource, BlockKey, BlockKey) {
        let gen = NamGenerator::new(GeneratorConfig {
            seed: 7,
            obs_per_deg2_per_day: 60.0,
            max_obs_per_block: 5_000,
            value_quantum: 1.0 / 64.0,
        });
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let live = BlockKey {
            geohash: Geohash::from_str("9q8").unwrap(),
            day,
        };
        let sealed = BlockKey {
            geohash: Geohash::from_str("9q9").unwrap(),
            day,
        };
        let src = LiveSource::new(gen, vec![(live.geohash, day)], 0.5);
        (src, live, sealed)
    }

    #[test]
    fn live_blocks_boot_truncated_and_grow_to_the_full_dataset() {
        let (src, live, sealed) = live_fixture();
        let full = src.generator().block_for_day(live.geohash, live.day);
        let split = src.generator().split_point(live.geohash, 0.5);
        assert_eq!(src.read_block(live), full[..split].to_vec());
        assert_eq!(src.block_version(live), 0);
        // Non-live blocks serve everything from the start.
        assert_eq!(
            src.read_block(sealed),
            src.generator().block_for_day(sealed.geohash, sealed.day)
        );
        assert_eq!(src.block_version(sealed), 0);

        // Stream the tail in two batches.
        let mid = split + (full.len() - split) / 2;
        assert_eq!(
            src.append(live, 0, &full[split..mid]),
            AppendOutcome::Applied { version: 1 }
        );
        assert_eq!(
            src.append(live, 1, &full[mid..]),
            AppendOutcome::Applied { version: 2 }
        );
        let (rows, version) = src.read_block_versioned(live);
        assert_eq!(rows, full, "streamed block converges to cold contents");
        assert_eq!(version, 2);
        assert_eq!(src.appended_rows(), full.len() - split);
    }

    #[test]
    fn append_is_idempotent_and_ordered() {
        let (src, live, sealed) = live_fixture();
        let full = src.generator().block_for_day(live.geohash, live.day);
        let split = src.generator().split_point(live.geohash, 0.5);
        let batch = &full[split..split + 4];
        assert_eq!(src.append(live, 1, batch), AppendOutcome::OutOfOrder);
        assert_eq!(
            src.append(live, 0, batch),
            AppendOutcome::Applied { version: 1 }
        );
        // A retried batch is a no-op.
        assert_eq!(src.append(live, 0, batch), AppendOutcome::Duplicate);
        assert_eq!(src.read_block(live).len(), split + 4);
        // Sealed blocks reject appends outright.
        assert_eq!(src.append(sealed, 0, batch), AppendOutcome::Unsupported);
    }
}
