//! Adapter: the deterministic NAM generator as a DFS block source.
//!
//! This is the "disk contents" of every simulated Galileo node: reading a
//! block materializes its observations from the seeded generator, so the
//! cluster behaves as if a full dataset were resident without storing it
//! (DESIGN.md §2).

use stash_data::NamGenerator;
use stash_dfs::{BlockKey, BlockSource};
use stash_geo::Geohash;
use stash_model::Observation;

/// [`BlockSource`] backed by a [`NamGenerator`].
#[derive(Debug, Clone)]
pub struct GenBlockSource {
    generator: NamGenerator,
}

impl GenBlockSource {
    pub fn new(generator: NamGenerator) -> Self {
        GenBlockSource { generator }
    }

    pub fn generator(&self) -> &NamGenerator {
        &self.generator
    }
}

impl BlockSource for GenBlockSource {
    fn read_block(&self, key: BlockKey) -> Vec<Observation> {
        self.generator.block_for_day(key.geohash, key.day)
    }

    fn block_bytes(&self, geohash: Geohash) -> usize {
        self.generator.block_bytes(geohash)
    }

    fn n_attrs(&self) -> usize {
        self.generator.schema().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_data::GeneratorConfig;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{TemporalRes, TimeBin};
    use std::str::FromStr;

    #[test]
    fn adapter_delegates_to_generator() {
        let gen = NamGenerator::new(GeneratorConfig::default());
        let src = GenBlockSource::new(gen.clone());
        let bk = BlockKey {
            geohash: Geohash::from_str("9xj").unwrap(),
            day: TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        };
        assert_eq!(src.read_block(bk), gen.block_for_day(bk.geohash, bk.day));
        assert_eq!(src.block_bytes(bk.geohash), gen.block_bytes(bk.geohash));
        assert_eq!(src.n_attrs(), 4);
    }
}
