//! The cluster wire protocol.
//!
//! Every interaction of Fig. 4 and Fig. 5 is one of these messages. The
//! `wire_size` figures feed the fabric's bandwidth model — Cells and key
//! lists dominate, matching the real system where replication payloads and
//! aggregation results are the bulk of traffic. Since PR 7 the sizes are
//! *exact*: every payload is priced as its `stash-flat` word encoding
//! (16-byte list envelope = magic + count, 24-byte flat [`CellKey`], and
//! [`stash_model::CellSummary::wire_bytes`] per summary), and partials
//! fragments actually travel as one contiguous [`FlatPartials`] buffer.

use stash_dfs::BlockKey;
use stash_geo::{BBox, TimeRange};
use stash_model::flat::KEY_WORDS;
use stash_model::{AggQuery, Cell, CellKey, FlatPartials, Observation, QueryResult};
use stash_net::NodeId;
use stash_obs::{QueryTrace, StageTimes};

/// Bytes of the flat list envelope: one magic word plus one count word.
pub const LIST_ENVELOPE_BYTES: usize = 16;

/// Exact bytes of one flat-encoded [`CellKey`].
pub const KEY_BYTES: usize = KEY_WORDS * 8;

/// A typed cluster-path failure. Distinguishing *why* an RPC failed is what
/// lets the robustness layer react correctly: timeouts and unreachable
/// peers trigger retry/failover, a refused reroute triggers a direct
/// resend, while storage and query errors are final.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A sub-RPC missed its deadline after all retries.
    Timeout { node: usize, op: &'static str },
    /// The fabric refused to carry the message — the peer is crashed (or
    /// the fabric is shutting down).
    Unreachable { node: usize },
    /// A rerouted (guest-graph) subquery reached a helper that no longer
    /// hosts the Cells; the coordinator must resend to the owner with
    /// `allow_reroute` cleared.
    RerouteRefused { helper: usize },
    /// The storage layer failed (block planning, incomplete fetch).
    Storage(String),
    /// The query itself could not be planned.
    BadQuery(String),
    /// Protocol violation: a reply of the wrong kind for the RPC slot.
    Protocol(String),
}

impl ClusterError {
    /// Would a retry (possibly elsewhere) plausibly succeed? Timeouts,
    /// dead peers, and refused reroutes are conditions of the moment;
    /// storage/query/protocol errors are deterministic and final.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ClusterError::Timeout { .. }
                | ClusterError::Unreachable { .. }
                | ClusterError::RerouteRefused { .. }
        )
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Timeout { node, op } => {
                write!(f, "{op} rpc to node {node} timed out")
            }
            ClusterError::Unreachable { node } => write!(f, "node {node} is unreachable"),
            ClusterError::RerouteRefused { helper } => {
                write!(f, "helper {helper} refused a rerouted subquery")
            }
            ClusterError::Storage(e) => write!(f, "storage error: {e}"),
            ClusterError::BadQuery(e) => write!(f, "bad query: {e}"),
            ClusterError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// All cluster messages.
///
/// `Clone` is required by the fabric's duplication faults — a duplicated
/// message is delivered as two independent envelopes.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- Client path -------------------------------------------------------
    /// Front-end query arriving at a coordinator node.
    Query {
        rpc: u64,
        reply_to: NodeId,
        query: AggQuery,
    },
    /// Final answer back to the client gateway, with the coordinator's
    /// assembled per-stage trace riding alongside the result.
    QueryResponse {
        rpc: u64,
        result: Result<QueryResult, ClusterError>,
        trace: QueryTrace,
    },

    // ---- Coordinator → owner scatter/gather --------------------------------
    /// Evaluate these Cells (all owned by the destination) against STASH.
    /// `allow_reroute` is cleared on the fallback resend after a failed
    /// guest-graph hit, preventing ping-pong.
    SubQuery {
        rpc: u64,
        reply_to: NodeId,
        keys: Vec<CellKey>,
        allow_reroute: bool,
        /// Set when the destination should serve from its guest graph
        /// (the request was rerouted by a hotspotted node, §VII-C).
        via_guest: bool,
    },
    SubQueryResponse {
        rpc: u64,
        result: Result<QueryResult, ClusterError>,
        /// The owner's stage timings for this share (PLM / merge / DFS,
        /// plus wire time of the request leg; the receiver folds in the
        /// response leg from its envelope).
        trace: StageTimes,
    },
    /// All of a coordinator's fragments for one destination in a single
    /// wire trip (PR 9): each inner `Vec<CellKey>` is one fragment,
    /// evaluated independently by the owner exactly as a standalone
    /// [`Msg::SubQuery`] would be. The cost model charges one list
    /// envelope for the batch plus each fragment's own envelope + keys,
    /// so batching saves `(n_fragments - 1)` wire round-trips and
    /// envelopes, never payload bytes.
    SubQueryBatch {
        rpc: u64,
        reply_to: NodeId,
        fragments: Vec<Vec<CellKey>>,
        allow_reroute: bool,
        /// See [`Msg::SubQuery::via_guest`].
        via_guest: bool,
    },
    /// Per-fragment results, index-aligned with the request's `fragments`.
    /// Fragments succeed or fail independently — a helper that lost its
    /// guest Cells for one fragment refuses just that fragment.
    SubQueryBatchResponse {
        rpc: u64,
        results: Vec<Result<QueryResult, ClusterError>>,
        /// The owner's combined stage timings across all fragments.
        trace: StageTimes,
    },

    // ---- Raw storage access (Basic mode; coarse cells spanning partitions;
    //      failover reads against DFS replicas) -----------------------------
    /// Scan your blocks for these Cells; reply with partial summaries.
    /// `exclude` lists nodes the sender believes dead: the receiver scans
    /// blocks it *effectively* owns under that exclusion (primary, or first
    /// live replica in the ring chain), so failed-over reads still cover
    /// every block exactly once.
    FetchPartials {
        rpc: u64,
        reply_to: NodeId,
        keys: Vec<CellKey>,
        exclude: Vec<usize>,
    },
    /// Partial summaries as one contiguous flat buffer (the sender encodes
    /// with [`FlatPartials::encode`], the receiver validates with
    /// [`FlatPartials::decode`]); decode failures surface as
    /// [`ClusterError::Protocol`] at the receiver.
    PartialsResponse {
        rpc: u64,
        partials: Result<FlatPartials, ClusterError>,
        /// Scan time on the serving node (`dfs_ns`) plus request-leg wire.
        trace: StageTimes,
    },

    // ---- Clique Handoff (Fig. 5) --------------------------------------------
    /// Step 3: hotspotted node asks a candidate helper for room.
    Distress {
        rpc: u64,
        reply_to: NodeId,
        n_cells: usize,
    },
    DistressAck {
        rpc: u64,
        accept: bool,
    },
    /// Step 4: ship the Clique(s); Cells carry their freshness scores.
    ReplicationRequest {
        rpc: u64,
        reply_to: NodeId,
        src_node: usize,
        cells: Vec<(Cell, f64)>,
    },
    ReplicationResponse {
        rpc: u64,
        ok: bool,
    },

    // ---- Storage updates -----------------------------------------------------
    /// Real-time ingest notification: summaries overlapping this region are
    /// stale (PLM adjustment, §IV-D).
    InvalidateRegion {
        bbox: BBox,
        time: TimeRange,
    },

    // ---- Live ingest (DESIGN.md §13) ----------------------------------------
    /// Append one batch of observations to a live block. `seq` is the
    /// per-block batch number (0-based, contiguous) — the storage layer's
    /// idempotency key under producer retries and owner failover.
    AppendBatch {
        rpc: u64,
        reply_to: NodeId,
        block: BlockKey,
        seq: u64,
        rows: Vec<Observation>,
        /// The block's final batch: applying it seals the block, which
        /// advances the continuous-rollup watermark (DESIGN.md §17).
        last: bool,
    },
    /// Applier → producer: the batch is durable *and* every live peer has
    /// acknowledged invalidation of its affected summaries. `applied` is
    /// false when the batch was rejected (out of order / sealed block) or
    /// invalidation could not be confirmed — the producer retries.
    AppendAck {
        rpc: u64,
        applied: bool,
    },
    /// Applier → peers: these exact Cell keys changed on disk; mark any
    /// cached copies (own graph and guest graph) stale. Answered inline on
    /// the peer's main loop so the ack doubles as a processing barrier.
    Invalidate {
        rpc: u64,
        reply_to: NodeId,
        keys: Vec<CellKey>,
    },
    InvalidateAck {
        rpc: u64,
    },

    // ---- Lifecycle -------------------------------------------------------------
    /// Orderly teardown: main loops and workers exit on receipt.
    Shutdown,
}

/// Exact serialized bytes of a flat key list: envelope + one flat key each.
pub fn keys_bytes(n: usize) -> usize {
    LIST_ENVELOPE_BYTES + KEY_BYTES * n
}

/// Exact serialized bytes of an error payload: one discriminant word, one
/// node/length word, plus the message bytes of string-carrying variants.
pub fn error_bytes(e: &ClusterError) -> usize {
    match e {
        ClusterError::Storage(s) | ClusterError::BadQuery(s) | ClusterError::Protocol(s) => {
            16 + s.len()
        }
        _ => 16,
    }
}

/// Exact serialized bytes of a result, priced as the flat encoding of its
/// cells (each cell = flat key + exact
/// [`stash_model::CellSummary::wire_bytes`]).
pub fn result_bytes(r: &Result<QueryResult, ClusterError>) -> usize {
    match r {
        Ok(qr) => {
            LIST_ENVELOPE_BYTES
                + qr.cells
                    .iter()
                    .map(|c| KEY_BYTES + c.summary.wire_bytes())
                    .sum::<usize>()
        }
        Err(e) => error_bytes(e),
    }
}

/// Exact serialized bytes of a partials fragment: the flat buffer's own
/// length — the one payload that is literally shipped in encoded form.
pub fn partials_bytes(p: &Result<FlatPartials, ClusterError>) -> usize {
    match p {
        Ok(fp) => fp.wire_size(),
        Err(e) => error_bytes(e),
    }
}

/// Exact serialized bytes of a fragment batch request: one outer list
/// envelope plus each fragment's own flat key list. The bytes are the sum
/// of the per-fragment [`keys_bytes`] plus one envelope — batching
/// collapses wire trips, not payloads.
pub fn batch_keys_bytes(fragments: &[Vec<CellKey>]) -> usize {
    LIST_ENVELOPE_BYTES + fragments.iter().map(|f| keys_bytes(f.len())).sum::<usize>()
}

/// Exact serialized bytes of a fragment batch response: one outer list
/// envelope plus each fragment's own [`result_bytes`].
pub fn batch_results_bytes(results: &[Result<QueryResult, ClusterError>]) -> usize {
    LIST_ENVELOPE_BYTES + results.iter().map(result_bytes).sum::<usize>()
}

/// Exact serialized bytes of replicated cells: flat key + freshness word +
/// exact summary bytes per cell, under one list envelope.
pub fn cells_bytes(cells: &[(Cell, f64)]) -> usize {
    LIST_ENVELOPE_BYTES
        + cells
            .iter()
            .map(|(c, _)| KEY_BYTES + 8 + c.summary.wire_bytes())
            .sum::<usize>()
}

impl Msg {
    /// Wire size estimate for the fabric's bandwidth model.
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::Query { .. } => 256,
            Msg::QueryResponse { result, .. } => result_bytes(result),
            Msg::SubQuery { keys, .. } => keys_bytes(keys.len()),
            Msg::SubQueryResponse { result, .. } => result_bytes(result),
            Msg::SubQueryBatch { fragments, .. } => batch_keys_bytes(fragments),
            Msg::SubQueryBatchResponse { results, .. } => batch_results_bytes(results),
            Msg::FetchPartials { keys, exclude, .. } => keys_bytes(keys.len()) + 8 * exclude.len(),
            Msg::PartialsResponse { partials, .. } => partials_bytes(partials),
            Msg::Distress { .. } => 64,
            Msg::DistressAck { .. } => 48,
            Msg::ReplicationRequest { cells, .. } => cells_bytes(cells),
            Msg::ReplicationResponse { .. } => 48,
            Msg::InvalidateRegion { .. } => 96,
            Msg::AppendBatch { rows, .. } => 64 + 56 * rows.len(),
            Msg::AppendAck { .. } => 24,
            Msg::Invalidate { keys, .. } => keys_bytes(keys.len()),
            Msg::InvalidateAck { .. } => 24,
            Msg::Shutdown => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;

    fn cell() -> Cell {
        let key = CellKey::new(
            Geohash::from_str("9q8y").unwrap(),
            TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        );
        let mut c = Cell::empty(key, 4);
        c.summary.push_row(&[1.0, 2.0, 3.0, 4.0]);
        c
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Msg::SubQuery {
            rpc: 1,
            reply_to: NodeId(0),
            keys: vec![cell().key],
            allow_reroute: true,
            via_guest: false,
        };
        let big = Msg::SubQuery {
            rpc: 1,
            reply_to: NodeId(0),
            keys: vec![cell().key; 100],
            allow_reroute: true,
            via_guest: false,
        };
        assert!(big.wire_size() > small.wire_size());

        let resp_ok = Msg::QueryResponse {
            rpc: 1,
            result: Ok(QueryResult {
                cells: vec![cell(); 10],
                ..Default::default()
            }),
            trace: QueryTrace::default(),
        };
        let resp_err = Msg::QueryResponse {
            rpc: 1,
            result: Err(ClusterError::Timeout {
                node: 2,
                op: "subquery",
            }),
            trace: QueryTrace::default(),
        };
        assert!(resp_ok.wire_size() > resp_err.wire_size());

        let repl = Msg::ReplicationRequest {
            rpc: 1,
            reply_to: NodeId(0),
            src_node: 0,
            cells: vec![(cell(), 1.0); 32],
        };
        assert!(
            repl.wire_size() > 32 * 100,
            "replication payloads are heavy"
        );
    }

    #[test]
    fn partials_fragment_bytes_are_exact_and_pinned() {
        // Known workload: 10 exact-only cells over the 4-attribute NAM
        // schema. Pin the fragment's wire bytes so a layout change (header
        // growth, per-attr words) is a conscious decision, not drift.
        let parts: Vec<_> = (0..10)
            .map(|i| {
                let mut c = cell();
                c.summary.push_row(&[i as f64, 1.0, 2.0, 3.0]);
                (c.key, c.summary)
            })
            .collect();
        let fp = FlatPartials::encode(&parts);
        let msg = Msg::PartialsResponse {
            rpc: 1,
            partials: Ok(fp.clone()),
            trace: StageTimes::default(),
        };
        // The fabric charges exactly the encoded buffer length...
        assert_eq!(msg.wire_size(), fp.to_bytes().len());
        // ...which for this workload is envelope + 10 × (flat key +
        // header word + 4 × 40-byte exact summaries).
        assert_eq!(
            msg.wire_size(),
            LIST_ENVELOPE_BYTES + 10 * (KEY_BYTES + 8 + 4 * 40)
        );
        // Error replies are priced exactly too.
        let err = Msg::PartialsResponse {
            rpc: 1,
            partials: Err(ClusterError::Storage("disk gone".into())),
            trace: StageTimes::default(),
        };
        assert_eq!(err.wire_size(), 16 + "disk gone".len());
    }

    #[test]
    fn key_list_sizes_are_exact_flat_lengths() {
        let keys = vec![cell().key; 7];
        let msg = Msg::Invalidate {
            rpc: 1,
            reply_to: NodeId(0),
            keys: keys.clone(),
        };
        assert_eq!(msg.wire_size(), LIST_ENVELOPE_BYTES + 7 * KEY_BYTES);
    }

    #[test]
    fn batch_envelope_saves_trips_not_bytes() {
        // A batch of F fragments costs exactly the F standalone SubQuery
        // payloads plus ONE extra outer envelope — so the per-message
        // base_latency is paid once instead of F times, while payload
        // bytes stay honest.
        let frags: Vec<Vec<CellKey>> = vec![vec![cell().key; 3], vec![cell().key; 5], vec![]];
        let batch = Msg::SubQueryBatch {
            rpc: 1,
            reply_to: NodeId(0),
            fragments: frags.clone(),
            allow_reroute: true,
            via_guest: false,
        };
        let singles: usize = frags.iter().map(|f| keys_bytes(f.len())).sum();
        assert_eq!(batch.wire_size(), LIST_ENVELOPE_BYTES + singles);
        assert_eq!(
            batch.wire_size(),
            LIST_ENVELOPE_BYTES + 3 * LIST_ENVELOPE_BYTES + (3 + 5) * KEY_BYTES
        );

        // Same shape on the response leg, and fragments fail independently.
        let results: Vec<Result<QueryResult, ClusterError>> = vec![
            Ok(QueryResult {
                cells: vec![cell(); 2],
                ..Default::default()
            }),
            Err(ClusterError::RerouteRefused { helper: 3 }),
        ];
        let resp = Msg::SubQueryBatchResponse {
            rpc: 1,
            results: results.clone(),
            trace: StageTimes::default(),
        };
        let singles: usize = results.iter().map(result_bytes).sum();
        assert_eq!(resp.wire_size(), LIST_ENVELOPE_BYTES + singles);
    }

    #[test]
    fn transient_errors_are_exactly_the_retriable_ones() {
        assert!(ClusterError::Timeout {
            node: 1,
            op: "subquery"
        }
        .is_transient());
        assert!(ClusterError::Unreachable { node: 1 }.is_transient());
        assert!(ClusterError::RerouteRefused { helper: 1 }.is_transient());
        assert!(!ClusterError::Storage("disk".into()).is_transient());
        assert!(!ClusterError::BadQuery("res".into()).is_transient());
        assert!(!ClusterError::Protocol("reply".into()).is_transient());
    }

    #[test]
    fn control_messages_are_light() {
        let d = Msg::Distress {
            rpc: 1,
            reply_to: NodeId(0),
            n_cells: 100,
        };
        assert!(d.wire_size() <= 64);
        let a = Msg::DistressAck {
            rpc: 1,
            accept: true,
        };
        assert!(a.wire_size() <= 64);
    }
}
