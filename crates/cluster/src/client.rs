//! The client API — the stand-in for the Grafana front-end (§VI-A).
//!
//! Every user interaction (pan, zoom, dice, …) becomes one
//! [`ClusterClient::query`] call, a small builder:
//!
//! ```text
//! client.query(&q).run()                  // round-robin coordinators, retries
//! client.query(&q).at(3).run()            // pinned coordinator, one attempt
//! client.query(&q).traced().run()         // result + per-stage QueryTrace
//! client.query(&q).at(3).traced().run()   // both
//! client.query(&q).quantile(0, 0.99)      // sketch accessor: approximate p99
//! client.query(&q).distinct(0)            // estimated distinct values
//! client.query(&q).top_k(0, 8)            // heavy hitters with bounds
//! ```
//!
//! The query is sent to a coordinator node over the fabric, and the
//! JSON-serializable [`QueryResult`] that comes back is what the WorldMap
//! panel would render. Clients are cheap to clone; the throughput
//! experiments run hundreds of them concurrently.

use crate::protocol::{ClusterError, Msg};
use stash_model::{AggQuery, QueryResult};
use stash_net::rpc::RpcError;
use stash_net::{NodeId, Router, RpcTable};
use stash_obs::{MetricsRegistry, QueryTrace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the gateway hands back per query: the cluster's answer plus the
/// coordinator-assembled trace (response-leg wire time already folded in).
pub(crate) type ClientReply = (Result<QueryResult, ClusterError>, QueryTrace);

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No response within the client timeout.
    Timeout,
    /// The cluster is shutting down.
    Disconnected,
    /// The cluster answered with an error.
    Remote(ClusterError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout => write!(f, "query timed out"),
            ClientError::Disconnected => write!(f, "cluster disconnected"),
            ClientError::Remote(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A handle for issuing front-end queries against a [`crate::SimCluster`].
#[derive(Clone)]
pub struct ClusterClient {
    router: Router<Msg>,
    gateway: NodeId,
    rpc: Arc<RpcTable<ClientReply>>,
    n_nodes: usize,
    next_coordinator: Arc<AtomicUsize>,
    timeout: Duration,
    retries: u32,
}

impl ClusterClient {
    pub(crate) fn new(
        router: Router<Msg>,
        gateway: NodeId,
        rpc: Arc<RpcTable<ClientReply>>,
        n_nodes: usize,
        timeout: Duration,
        retries: u32,
    ) -> Self {
        ClusterClient {
            router,
            gateway,
            rpc,
            n_nodes,
            next_coordinator: Arc::new(AtomicUsize::new(0)),
            timeout,
            retries,
        }
    }

    /// Start one aggregation query. Returns a [`QueryCall`] builder:
    /// modify with [`QueryCall::at`] (pin the coordinator) and/or
    /// [`QueryCall::traced`] (get the per-stage trace back), then
    /// [`QueryCall::run`] to block until the summary arrives.
    ///
    /// Without `.at(..)`, coordinators rotate round-robin, mimicking a
    /// front-end load balancer that skips coordinators known to be down;
    /// transient failures (timeout, crash mid-coordination) are retried on
    /// the next live coordinator, up to `client_retries` extra attempts.
    /// With `.at(..)`, exactly one attempt goes to that coordinator —
    /// experiments that need deterministic placement get deterministic
    /// failures too.
    pub fn query<'a>(&'a self, query: &'a AggQuery) -> QueryCall<'a> {
        QueryCall {
            client: self,
            query,
            coordinator: None,
        }
    }

    /// Number of storage nodes queries can coordinate on.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Round-robin dispatch with retries (no pinned coordinator).
    fn dispatch_rotating(
        &self,
        query: &AggQuery,
    ) -> Result<(QueryResult, QueryTrace), ClientError> {
        let mut last = ClientError::Disconnected;
        for _ in 0..=self.retries {
            // Pick the next coordinator the fabric still talks to.
            let mut coord = None;
            for _ in 0..self.n_nodes {
                let c = self.next_coordinator.fetch_add(1, Ordering::Relaxed) % self.n_nodes;
                if !self.router.is_crashed(NodeId(c)) {
                    coord = Some(c);
                    break;
                }
            }
            let Some(coord) = coord else {
                return Err(ClientError::Disconnected); // every node is down
            };
            match self.dispatch_at(query, coord) {
                Ok(traced) => return Ok(traced),
                Err(ClientError::Remote(e)) if !e.is_transient() => {
                    return Err(ClientError::Remote(e)); // deterministic: retry is futile
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One attempt through a fixed coordinator.
    fn dispatch_at(
        &self,
        query: &AggQuery,
        coordinator: usize,
    ) -> Result<(QueryResult, QueryTrace), ClientError> {
        assert!(coordinator < self.n_nodes, "coordinator index out of range");
        let (rpc_id, rx) = self.rpc.register();
        let msg = Msg::Query {
            rpc: rpc_id,
            reply_to: self.gateway,
            query: query.clone(),
        };
        let bytes = msg.wire_size();
        if !self
            .router
            .send(self.gateway, NodeId(coordinator), msg, bytes)
        {
            self.rpc.cancel(rpc_id);
            return Err(ClientError::Disconnected);
        }
        match self.rpc.wait(rpc_id, &rx, self.timeout) {
            Ok((Ok(result), trace)) => Ok((result, trace)),
            Ok((Err(remote), _)) => Err(ClientError::Remote(remote)),
            Err(RpcError::Timeout) => Err(ClientError::Timeout),
            Err(RpcError::Canceled) => Err(ClientError::Disconnected),
        }
    }
}

/// One prepared query (see [`ClusterClient::query`]). Nothing is sent until
/// [`QueryCall::run`].
#[must_use = "a QueryCall does nothing until .run()"]
pub struct QueryCall<'a> {
    client: &'a ClusterClient,
    query: &'a AggQuery,
    coordinator: Option<usize>,
}

impl<'a> QueryCall<'a> {
    /// Pin the coordinator node: exactly one attempt, no rotation, no
    /// client-level retries.
    pub fn at(mut self, coordinator: usize) -> Self {
        self.coordinator = Some(coordinator);
        self
    }

    /// Also return the coordinator's [`QueryTrace`] — the per-stage
    /// breakdown of where the answer's latency went (the trace of the
    /// attempt that succeeded).
    pub fn traced(self) -> TracedQueryCall<'a> {
        TracedQueryCall { call: self }
    }

    /// Send the query; block until the summary arrives (or fails).
    pub fn run(self) -> Result<QueryResult, ClientError> {
        self.dispatch().map(|(result, _)| result)
    }

    /// Run the query and fold the per-Cell quantile sketches into one
    /// estimate: `client.query(&q).quantile(0, 0.99)` is the approximate
    /// p99 of attribute 0 over the queried region. `Ok(None)` when the
    /// cluster does not carry sketch-valued Cells (the config's `sketch`
    /// spec is disabled) or the result is empty.
    pub fn quantile(
        self,
        attr: usize,
        q: f64,
    ) -> Result<Option<stash_model::QuantileEstimate>, ClientError> {
        Ok(self.run()?.quantile(attr, q))
    }

    /// Run the query and return the estimated distinct-value count of
    /// attribute `attr` over the queried region (see
    /// [`QueryResult::distinct`]).
    pub fn distinct(
        self,
        attr: usize,
    ) -> Result<Option<stash_model::DistinctEstimate>, ClientError> {
        Ok(self.run()?.distinct(attr))
    }

    /// Run the query and return the `k` most frequent values of attribute
    /// `attr` over the queried region (see [`QueryResult::top_k`]).
    pub fn top_k(
        self,
        attr: usize,
        k: usize,
    ) -> Result<Option<Vec<stash_model::TopKEntry>>, ClientError> {
        Ok(self.run()?.top_k(attr, k))
    }

    /// [`top_k`](Self::top_k) with the truncation flag: when the returned
    /// [`TopKResult::truncated`](stash_model::TopKResult::truncated) is
    /// true, candidate eviction fired while folding and the list may omit
    /// true top-`k` values; when false, a list shorter than `k` is ground
    /// truth. Front-ends that render completeness should use this.
    pub fn top_k_report(
        self,
        attr: usize,
        k: usize,
    ) -> Result<Option<stash_model::TopKResult>, ClientError> {
        Ok(self.run()?.top_k_report(attr, k))
    }

    fn dispatch(self) -> Result<(QueryResult, QueryTrace), ClientError> {
        match self.coordinator {
            Some(c) => self.client.dispatch_at(self.query, c),
            None => self.client.dispatch_rotating(self.query),
        }
    }
}

/// A [`QueryCall`] that returns the trace alongside the result.
#[must_use = "a TracedQueryCall does nothing until .run()"]
pub struct TracedQueryCall<'a> {
    call: QueryCall<'a>,
}

impl TracedQueryCall<'_> {
    /// Pin the coordinator node (see [`QueryCall::at`]).
    pub fn at(mut self, coordinator: usize) -> Self {
        self.call.coordinator = Some(coordinator);
        self
    }

    /// Send the query; block until result and trace arrive (or fail).
    pub fn run(self) -> Result<(QueryResult, QueryTrace), ClientError> {
        self.call.dispatch()
    }
}

/// Gateway pump: drains the client endpoint and completes waiting queries
/// and ingest acks. Runs on its own thread until shutdown.
pub(crate) fn run_gateway(
    inbox: stash_net::Inbox<Msg>,
    rpc: Arc<RpcTable<ClientReply>>,
    ingest_rpc: Arc<RpcTable<bool>>,
    obs: Arc<MetricsRegistry>,
) {
    while let Ok(env) = inbox.recv() {
        let wire_ns = env.wire.as_nanos() as u64;
        match env.payload {
            Msg::QueryResponse {
                rpc: id,
                result,
                mut trace,
            } => {
                // The response leg back to the client is the one wire hop
                // the coordinator could not have measured.
                trace.agg.wire_ns += wire_ns;
                rpc.complete(id, (result, trace));
            }
            // Front-end caching clients (§IX-A) issue SubQueries directly;
            // their answers share the client RPC table. The owner's stage
            // record becomes a one-subquery trace.
            Msg::SubQueryResponse {
                rpc: id,
                result,
                trace: mut st,
            } => {
                st.wire_ns += wire_ns;
                let trace = QueryTrace {
                    agg: st,
                    subqueries: 1,
                    ..QueryTrace::default()
                };
                rpc.complete(id, (result, trace));
            }
            // Ingest producers ([`crate::ingest::IngestClient`]) wait on
            // their own RPC table; a positive ack means batch applied and
            // every peer's caches invalidated.
            Msg::AppendAck { rpc: id, applied } => {
                ingest_rpc.complete(id, applied);
            }
            Msg::Shutdown => return,
            // A message the gateway has no business receiving (fabric
            // duplication faults can produce these after an RPC slot is
            // gone). Counted, not asserted: chaos runs must survive it.
            _ => {
                obs.inc("gateway.unexpected_msg");
            }
        }
    }
}
