//! Sketch-valued Cells under live ingest (ISSUE 6 tentpole + satellite):
//! with sketches enabled, a cluster that streamed every append batch must
//! answer quantile / distinct / top-K queries **bit-for-bit** identically
//! to a cold cluster built over the full dataset — at every workload
//! level — and both must agree with folding the raw observations
//! directly.
//!
//! The dataset uses `value_quantum = 1.0`: every attribute takes at most
//! ~150 distinct integer values, far under the default 256-candidate
//! heavy-hitter list, so all three sketch states are pure functions of
//! the observation multiset (DESIGN.md §14) and exact equality is a
//! sound oracle regardless of merge order (delta-patched live vs. folded
//! cold vs. direct raw fold).

use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use stash_cluster::{run_stream, ClusterConfig, IngestConfig, Mode, SimCluster};
use stash_data::{GeneratorConfig, NamGenerator};
use stash_dfs::DiskModel;
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{AggQuery, CellSummary, QueryResult, SketchSpec};
use stash_net::NetConfig;

const N_ATTRS: usize = 4;

fn live_day() -> TimeBin {
    TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
}

fn live_blocks() -> Vec<(Geohash, TimeBin)> {
    let day = live_day();
    ["9q8", "9q9", "9qb", "9qc"]
        .iter()
        .map(|g| (Geohash::from_str(g).unwrap(), day))
        .collect()
}

fn config(live: bool) -> ClusterConfig {
    ClusterConfig::builder()
        .n_nodes(4)
        .coord_workers(2)
        .service_workers(2)
        .fetch_workers(2)
        .mode(Mode::Stash)
        .disk(DiskModel::free())
        .net(NetConfig {
            base_latency: Duration::from_micros(20),
            ..NetConfig::default()
        })
        .generator(GeneratorConfig {
            seed: 23,
            obs_per_deg2_per_day: 40.0,
            max_obs_per_block: 10_000,
            // Integer-valued attributes: bounded distinct sets keep every
            // sketch state a pure function of the row multiset.
            value_quantum: 1.0,
        })
        .scan_cost_per_obs(Duration::ZERO)
        .cell_service_cost(Duration::ZERO)
        .live_blocks(if live { live_blocks() } else { Vec::new() })
        .live_base_fraction(0.5)
        .tweak(|c| c.stash.sketch = SketchSpec::standard())
        .build()
        .expect("sketch ingest test config is valid")
}

/// Pan/zoom/dice workload over the live region at several levels (see
/// `ingest.rs`; the final query's day is entirely outside the stream).
fn workload() -> Vec<AggQuery> {
    let day = TimeRange::whole_day(2015, 2, 2);
    vec![
        AggQuery::new(
            BBox::from_corner_extent(36.8, -123.0, 0.8, 1.4),
            day,
            4,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(36.8, -121.6, 0.8, 1.4),
            day,
            4,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(36.0, -124.5, 4.0, 4.5),
            day,
            3,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(37.0, -122.6, 0.3, 0.5),
            day,
            5,
            TemporalRes::Hour,
        ),
        AggQuery::new(
            BBox::from_corner_extent(30.0, -125.0, 12.0, 20.0),
            day,
            2,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(36.8, -123.0, 0.8, 1.4),
            TimeRange::whole_day(2015, 6, 10),
            4,
            TemporalRes::Day,
        ),
    ]
}

fn assert_bit_identical(live: &QueryResult, cold: &QueryResult, what: &str) {
    assert_eq!(
        live.cells.len(),
        cold.cells.len(),
        "{what}: cell count diverged"
    );
    for (l, c) in live.cells.iter().zip(&cold.cells) {
        assert_eq!(l.key, c.key, "{what}: key order diverged");
        assert_eq!(
            l.summary, c.summary,
            "{what}: summary (incl. sketches) for {:?} not bit-identical",
            l.key
        );
    }
}

/// Stream a live cluster to quiescence and demand every sketch answer —
/// whole summaries, per-level — equals the cold ground truth exactly.
#[test]
fn streamed_sketches_match_cold_cluster_bit_for_bit() {
    let queries = workload();
    let cold = SimCluster::new(config(false));
    let cold_client = cold.client();
    let truth: Vec<QueryResult> = queries
        .iter()
        .map(|q| cold_client.query(q).run().expect("cold query"))
        .collect();
    for t in &truth {
        assert!(
            t.cells.iter().all(|c| c.summary.has_sketches()),
            "sketch-enabled cold cluster emitted exact-only cells"
        );
    }

    let cluster = SimCluster::new(config(true));
    let client = cluster.client();
    // Warm caches on the truncated base data so appends hit the
    // delta-patch path against resident sketched Cells.
    for q in &queries {
        client.query(q).run().expect("warm-up on partial data");
    }
    let stream = cluster.live_stream(128);
    let expected_rows = stream.total_rows();
    assert!(expected_rows > 0, "stream must have a tail to deliver");
    let sink = Arc::new(cluster.ingest_client());
    let stats = run_stream(&stream, sink, IngestConfig::default());
    assert_eq!(stats.rows_sent, expected_rows as u64);
    assert_eq!(stats.batches_failed, 0);

    // Two passes: stale/patched caches, then settled caches.
    for pass in ["post-stream", "settled"] {
        for (q, want) in queries.iter().zip(&truth) {
            let got = client.query(q).run().expect("live query");
            assert_bit_identical(&got, want, pass);
        }
    }

    // The estimator accessors agree end-to-end, including through the
    // builder convenience forms.
    for (q, want) in queries.iter().zip(&truth) {
        for attr in 0..N_ATTRS {
            assert_eq!(
                client.query(q).quantile(attr, 0.99).expect("quantile call"),
                want.quantile(attr, 0.99)
            );
            assert_eq!(
                client.query(q).distinct(attr).expect("distinct call"),
                want.distinct(attr)
            );
            assert_eq!(
                client.query(q).top_k(attr, 8).expect("top_k call"),
                want.top_k(attr, 8)
            );
        }
    }

    // The sketch pipeline must actually have fired.
    let merges: u64 = (0..cluster.n_nodes())
        .map(|i| cluster.node(i).obs.counter("sketch.merges").get())
        .sum();
    let bytes: u64 = (0..cluster.n_nodes())
        .map(|i| cluster.node(i).obs.counter("sketch.bytes").get())
        .sum();
    let patched: u64 = (0..cluster.n_nodes())
        .map(|i| cluster.node(i).obs.counter("ingest.cells_patched").get())
        .sum();
    assert!(merges > 0, "no sketch state was ever merged");
    assert!(bytes > 0, "no sketch bytes were ever emitted");
    assert!(patched > 0, "no resident Cell was delta-patched");
    cluster.shutdown();
    cold.shutdown();
}

/// Acceptance check: a cached hierarchical query's p50/p99, distinct
/// count, and top-K equal folding the raw observations directly — the
/// per-Cell sketches the cluster merged bottom-up are bit-identical to
/// single-pass folds over each cell's rows, and the query-level fold over
/// cached Cells matches one fold over the whole region.
#[test]
fn cached_hierarchical_sketches_match_direct_raw_fold() {
    // Fine-grained queries whose cells sit at or above the 3-char block
    // resolution, so each cell's rows come from exactly one block.
    let day = TimeRange::whole_day(2015, 2, 2);
    let queries = [
        AggQuery::new(
            BBox::from_corner_extent(36.8, -123.0, 0.8, 1.4),
            day,
            4,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(37.0, -122.6, 0.3, 0.5),
            day,
            5,
            TemporalRes::Hour,
        ),
    ];
    let cfg = config(false);
    let spec = cfg.stash.sketch.clone();
    let generator = NamGenerator::new(cfg.generator.clone());
    let cluster = SimCluster::new(cfg);
    let client = cluster.client();

    for q in &queries {
        // Ask twice: the second answer is served from cached Cells.
        client.query(q).run().expect("cold query");
        let result = client.query(q).run().expect("cached query");
        assert!(!result.cells.is_empty(), "query found no data");

        // Reference: fold each cell's raw rows straight from the sealed
        // generator blocks, then the whole region in one pass.
        let mut whole = CellSummary::empty_with(N_ATTRS, &spec);
        for cell in &result.cells {
            let level = cell.key.level();
            let block = cell.key.geohash.prefix(3).unwrap();
            let block_day = TimeBin::containing(TemporalRes::Day, cell.key.time.start());
            let mut reference = CellSummary::empty_with(N_ATTRS, &spec);
            for obs in generator.block_for_day(block, block_day) {
                if obs.cell_key(level.spatial_res(), level.temporal_res()) == Some(cell.key) {
                    reference.push_row(&obs.values);
                    whole.push_row(&obs.values);
                }
            }
            assert_eq!(
                cell.summary, reference,
                "cached Cell {:?} diverged from direct raw fold",
                cell.key
            );
        }
        // Query-level accessors == one direct fold over all region rows.
        for attr in 0..N_ATTRS {
            let direct = whole.attr_sketches(attr).expect("whole-region sketches");
            for q_frac in [0.5, 0.99] {
                assert_eq!(
                    result.quantile(attr, q_frac),
                    direct.quantile.quantile(q_frac),
                    "attr {attr} p{q_frac} diverged from direct fold"
                );
            }
            assert_eq!(
                result.distinct(attr),
                Some(direct.distinct.estimate()),
                "attr {attr} distinct diverged from direct fold"
            );
            assert_eq!(
                result.top_k(attr, 8),
                Some(direct.heavy.top_k(8)),
                "attr {attr} top-8 diverged from direct fold"
            );
        }
    }
    cluster.shutdown();
}
