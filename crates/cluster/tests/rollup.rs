//! Continuous-rollup equivalence, serving, and retention (DESIGN.md §17).
//!
//! Three layers of the tentpole guarantee are pinned here:
//!
//! 1. A property test on [`RollupStore`] alone: folding a stream of append
//!    batches — any interleaving across blocks, any batch size, any rollup
//!    level set — produces **bit-for-bit** the cells a cold recompute over
//!    the final blocks produces, sketches included.
//! 2. End-to-end through [`SimCluster`]: once the stream seals every live
//!    block, a query at a rollup level under the watermark is answered
//!    from the rollup (`rollup_hits` > 0, zero rows decoded from raw
//!    blocks) and is bit-identical to a cold cluster's answer.
//! 3. Retention: with a downsample policy, `apply_retention` drops raw
//!    blocks behind the horizon with exact byte accounting (FrameCache
//!    audit), is idempotent, and leaves the rollup authoritative for the
//!    dropped history.
//!
//! As everywhere else, `value_quantum = 1/64` makes f64 summation
//! order-independent, so exact equality is the honest assertion.

use std::collections::VecDeque;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use stash_cluster::{run_stream, ClusterConfig, IngestConfig, Mode, RollupPolicy, SimCluster};
use stash_data::{GeneratorConfig, NamGenerator};
use stash_dfs::{frame_spatial_res, BlockFrame, BlockKey, DiskModel, RollupStore};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{AggQuery, CellKey, CellSummary, Level, Observation, QueryResult, SketchSpec};
use stash_net::NetConfig;

const N_ATTRS: usize = 4;

fn live_day() -> TimeBin {
    TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
}

fn tiles() -> Vec<Geohash> {
    ["9q8", "9q9", "9qb", "9qc"]
        .iter()
        .map(|g| Geohash::from_str(g).unwrap())
        .collect()
}

/// Rollup-level deltas of `rows` within `block`: the same fold the ingest
/// path performs (`BlockFrame::decode` + `aggregate_with` over the keys
/// the rows touch), restricted to the rollup levels.
fn delta_cells(
    block: BlockKey,
    rows: &[Observation],
    levels: &[Level],
    sketch: &SketchSpec,
) -> Vec<(CellKey, CellSummary)> {
    let mut wanted: Vec<CellKey> = rows
        .iter()
        .flat_map(|o| {
            levels
                .iter()
                .filter_map(move |l| o.cell_key(l.spatial_res(), l.temporal_res()))
        })
        .collect();
    wanted.sort_unstable();
    wanted.dedup();
    if wanted.is_empty() {
        return Vec::new();
    }
    let res = frame_spatial_res(block.geohash.len(), &wanted);
    BlockFrame::decode(block, rows, N_ATTRS, res)
        .aggregate_with(&wanted, sketch)
        .cells
}

/// Candidate rollup levels for the property test (all coarser than the
/// block tiles, mixing Day and Month bins).
fn candidate_levels() -> Vec<Level> {
    [
        (1, TemporalRes::Day),
        (2, TemporalRes::Day),
        (3, TemporalRes::Day),
        (1, TemporalRes::Month),
        (2, TemporalRes::Month),
    ]
    .into_iter()
    .map(|(s, t)| Level::of(s, t).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// The tentpole exactness property: stream-folded rollups equal a cold
    /// recompute bit for bit — for random append orders (any interleaving
    /// across blocks, in-order within each), random batch sizes, random
    /// base fractions, random rollup level sets, and random served key
    /// subsets. Duplicate folds (retried batches) are replayed along the
    /// way and must be no-ops.
    #[test]
    fn streamed_rollup_equals_cold_recompute_bit_for_bit(
        seed in 1u64..64,
        base_pick in 0usize..4,
        batch_pick in 0usize..3,
        level_picks in prop::collection::vec(0usize..5, 1..4),
        interleave in prop::collection::vec(0usize..1_000_000, 256),
    ) {
        let base_fraction = [0.0, 0.25, 0.5, 0.9][base_pick];
        let batch_rows = [32usize, 100, 256][batch_pick];
        let generator = NamGenerator::new(GeneratorConfig {
            seed,
            obs_per_deg2_per_day: 30.0,
            max_obs_per_block: 4_000,
            value_quantum: 1.0 / 64.0,
        });
        let sketch = SketchSpec::standard();
        let all = candidate_levels();
        let levels: Vec<Level> = level_picks.iter().map(|&i| all[i]).collect();
        let day = live_day();
        let blocks: Vec<BlockKey> = tiles()
            .into_iter()
            .take(3)
            .map(|geohash| BlockKey { geohash, day })
            .collect();
        let horizon = epoch_seconds(2015, 3, 1, 0, 0, 0);

        // Cold recompute: each block folded once, whole.
        let cold = RollupStore::new(levels.iter().copied(), [], horizon);
        let mut all_keys: Vec<CellKey> = Vec::new();
        for &block in &blocks {
            let rows = generator.block_for_day(block.geohash, block.day);
            let cells = delta_cells(block, &rows, &levels, &sketch);
            all_keys.extend(cells.iter().map(|(k, _)| *k));
            prop_assert!(cold.fold_base(block, &cells));
        }
        all_keys.sort_unstable();
        all_keys.dedup();
        prop_assert!(!all_keys.is_empty(), "dataset must touch rollup cells");

        // Streamed: base fold, then the tail in batches, interleaved
        // across blocks by the random pick sequence.
        let live = RollupStore::new(levels.iter().copied(), blocks.iter().copied(), horizon);
        let mut lanes: Vec<(BlockKey, u64, VecDeque<Vec<Observation>>)> = Vec::new();
        for &block in &blocks {
            let base = generator.base_rows(block.geohash, block.day, base_fraction);
            prop_assert!(live.fold_base(
                block,
                &delta_cells(block, &base, &levels, &sketch)
            ));
            let tail = generator.tail_rows(block.geohash, block.day, base_fraction);
            let batches: VecDeque<Vec<Observation>> =
                tail.chunks(batch_rows).map(|c| c.to_vec()).collect();
            lanes.push((block, 0, batches));
        }

        // While anything is unsealed, the live day is above the watermark
        // and serve() must decline the whole key set.
        prop_assert!(live.serve(&all_keys).is_none(), "pre-seal serve must decline");

        let mut pick = interleave.iter().cycle();
        let mut last_watermark = live.watermark();
        while lanes.iter().any(|(_, _, q)| !q.is_empty()) {
            let open: Vec<usize> = lanes
                .iter()
                .enumerate()
                .filter(|(_, (_, _, q))| !q.is_empty())
                .map(|(i, _)| i)
                .collect();
            let lane = open[pick.next().unwrap() % open.len()];
            let (block, ref mut seq, ref mut queue) = lanes[lane];
            let rows = queue.pop_front().unwrap();
            let cells = delta_cells(block, &rows, &levels, &sketch);
            prop_assert!(live.fold(block, *seq, &cells), "in-order fold applies");
            // A retried duplicate of the same batch must be a no-op.
            prop_assert!(!live.fold(block, *seq, &cells), "duplicate fold skipped");
            *seq += 1;
            if queue.is_empty() {
                live.seal(block);
            }
            let w = live.watermark();
            prop_assert!(w >= last_watermark, "watermark is monotone");
            last_watermark = w;
        }
        prop_assert_eq!(live.watermark(), horizon, "all sealed: watermark at horizon");

        // Bit-for-bit equality, full key set and a strided subset.
        let want = cold.serve(&all_keys).expect("cold store serves");
        let got = live.serve(&all_keys).expect("live store serves");
        prop_assert_eq!(&got, &want, "streamed rollup != cold recompute");
        let subset: Vec<CellKey> = all_keys.iter().copied().step_by(2).collect();
        prop_assert_eq!(
            live.serve(&subset).expect("subset serves"),
            cold.serve(&subset).expect("cold subset serves"),
            "subset serve diverged"
        );
    }
}

/// A one-month domain over the live tiles' region, so Month-level rollup
/// cells fit entirely under the all-sealed watermark.
fn rollup_config(live: bool, policy: RollupPolicy) -> ClusterConfig {
    ClusterConfig::builder()
        .n_nodes(4)
        .coord_workers(2)
        .service_workers(2)
        .fetch_workers(2)
        .mode(Mode::Stash)
        .disk(DiskModel::free())
        .net(NetConfig {
            base_latency: Duration::from_micros(20),
            ..NetConfig::default()
        })
        .data_bbox(BBox::from_corner_extent(36.0, -124.5, 4.0, 4.5))
        .data_time(
            TimeRange::new(
                epoch_seconds(2015, 2, 1, 0, 0, 0),
                epoch_seconds(2015, 3, 1, 0, 0, 0),
            )
            .unwrap(),
        )
        .generator(GeneratorConfig {
            seed: 11,
            obs_per_deg2_per_day: 40.0,
            max_obs_per_block: 10_000,
            value_quantum: 1.0 / 64.0,
        })
        .scan_cost_per_obs(Duration::ZERO)
        .cell_service_cost(Duration::ZERO)
        .live_blocks(if live {
            tiles().into_iter().map(|g| (g, live_day())).collect()
        } else {
            Vec::new()
        })
        .live_base_fraction(0.5)
        .rollup(policy)
        .build()
        .expect("rollup test config is valid")
}

fn region() -> BBox {
    BBox::from_corner_extent(36.0, -124.5, 4.0, 4.5)
}

fn assert_bit_identical(live: &QueryResult, cold: &QueryResult, what: &str) {
    assert_eq!(
        live.cells.len(),
        cold.cells.len(),
        "{what}: cell count diverged"
    );
    for (l, c) in live.cells.iter().zip(&cold.cells) {
        assert_eq!(l.key, c.key, "{what}: key order diverged");
        assert_eq!(
            l.summary, c.summary,
            "{what}: summary for {:?} not bit-identical",
            l.key
        );
    }
}

fn counter_sum(cluster: &SimCluster, name: &str) -> u64 {
    (0..cluster.n_nodes())
        .map(|i| cluster.node(i).obs.counter(name).get())
        .sum()
}

fn stream_to_quiescence(cluster: &SimCluster) {
    let stream = cluster.live_stream(128);
    let expected = stream.total_rows();
    assert!(expected > 0, "stream must have a tail");
    let stats = run_stream(
        &stream,
        Arc::new(cluster.ingest_client()),
        IngestConfig::default(),
    );
    assert_eq!(stats.rows_sent, expected as u64, "every row delivered");
    assert_eq!(stats.batches_failed, 0, "no lane abandoned its block");
}

/// End-to-end: after the stream seals every live block, rollup-level
/// queries are served from the rollup — bit-identical to a cold cluster,
/// with `rollup_hits` reported and zero raw rows decoded.
#[test]
fn rollup_serves_watermarked_queries_bit_for_bit() {
    let policy = RollupPolicy::new(vec![
        Level::of(2, TemporalRes::Day).unwrap(),
        Level::of(1, TemporalRes::Month).unwrap(),
    ])
    .unwrap();
    let q_day = AggQuery::new(
        region(),
        TimeRange::whole_day(2015, 2, 2),
        2,
        TemporalRes::Day,
    );
    let q_month = AggQuery::new(
        region(),
        TimeRange::new(
            epoch_seconds(2015, 2, 1, 0, 0, 0),
            epoch_seconds(2015, 3, 1, 0, 0, 0),
        )
        .unwrap(),
        1,
        TemporalRes::Month,
    );
    let q_fine = AggQuery::new(
        region(),
        TimeRange::whole_day(2015, 2, 2),
        4,
        TemporalRes::Day,
    );

    let cold = SimCluster::new(rollup_config(false, RollupPolicy::disabled()));
    let cold_client = cold.client();
    let truth_day = cold_client.query(&q_day).run().expect("cold day query");
    let truth_month = cold_client.query(&q_month).run().expect("cold month query");
    let truth_fine = cold_client.query(&q_fine).run().expect("cold fine query");
    cold.shutdown();

    let cluster = SimCluster::new(rollup_config(true, policy));
    let client = cluster.client();
    let rollup = cluster.rollup().expect("rollup store attached").clone();
    assert!(
        rollup.watermark() < live_day().range().end,
        "live blocks hold the watermark below the streamed day"
    );

    // Before the stream completes, the live day is above the watermark:
    // queries work, but nothing may be rollup-served.
    let pre = client.query(&q_day).run().expect("pre-stream query");
    assert_eq!(
        pre.rollup_hits, 0,
        "ineligible query must not be rollup-served"
    );

    stream_to_quiescence(&cluster);
    assert_eq!(
        rollup.watermark(),
        epoch_seconds(2015, 3, 1, 0, 0, 0),
        "all live blocks sealed: watermark at the domain end"
    );
    assert!(
        counter_sum(&cluster, "rollup.folds") > 0,
        "appends folded deltas"
    );
    assert!(
        counter_sum(&cluster, "rollup.seals") >= 4,
        "every live block's final batch sealed it"
    );

    let decoded_before = counter_sum(&cluster, "dfs.rows_decoded");
    let got_day = client.query(&q_day).run().expect("rollup day query");
    let got_month = client.query(&q_month).run().expect("rollup month query");
    assert_bit_identical(&got_day, &truth_day, "rollup-served day");
    assert_bit_identical(&got_month, &truth_month, "rollup-served month");
    assert!(got_day.rollup_hits > 0, "day query served from the rollup");
    assert!(
        got_month.rollup_hits > 0,
        "month query served from the rollup"
    );
    assert!(
        counter_sum(&cluster, "rollup.serves") > 0,
        "serve counter fired"
    );
    assert_eq!(
        counter_sum(&cluster, "dfs.rows_decoded"),
        decoded_before,
        "rollup-served queries must not touch raw blocks"
    );

    // A non-rollup level takes the normal path and stays exact.
    let got_fine = client.query(&q_fine).run().expect("fine query");
    assert_eq!(got_fine.rollup_hits, 0, "fine level is not rollup-served");
    assert_bit_identical(&got_fine, &truth_fine, "fine level post-stream");

    cluster.shutdown();
}

/// Retention mode: raw blocks behind the horizon are dropped with exact
/// byte accounting, the pass is idempotent, and the rollup stays the
/// (bit-exact) authority for the dropped history in bounded memory.
#[test]
fn retention_drops_raw_blocks_with_exact_accounting() {
    let horizon = epoch_seconds(2015, 2, 20, 0, 0, 0);
    let policy = RollupPolicy::new(vec![
        Level::of(2, TemporalRes::Day).unwrap(),
        Level::of(1, TemporalRes::Month).unwrap(),
    ])
    .unwrap()
    .with_retention(horizon, true)
    .unwrap();

    let q_dropped_day = AggQuery::new(
        region(),
        TimeRange::whole_day(2015, 2, 10),
        2,
        TemporalRes::Day,
    );
    let q_fine_dropped = AggQuery::new(
        region(),
        TimeRange::whole_day(2015, 2, 10),
        4,
        TemporalRes::Day,
    );

    let cold = SimCluster::new(rollup_config(false, RollupPolicy::disabled()));
    let truth = cold
        .client()
        .query(&q_dropped_day)
        .run()
        .expect("cold truth");
    cold.shutdown();

    let cluster = SimCluster::new(rollup_config(true, policy));
    let client = cluster.client();
    // Warm frame caches over soon-to-be-dropped history so retention has
    // cached bytes to release and account for.
    client.query(&q_fine_dropped).run().expect("cache warm-up");
    stream_to_quiescence(&cluster);

    let report = cluster.apply_retention();
    assert!(
        report.blocks_dropped > 0,
        "history behind the horizon dropped"
    );
    assert!(
        report.raw_bytes_dropped > 0,
        "dropped blocks held raw bytes"
    );
    assert_eq!(
        report.cache_bytes_freed,
        counter_sum(&cluster, "dfs.retire.cache_bytes") as usize,
        "FrameCache audit: freed bytes accounted exactly"
    );
    // The block source is shared cluster-wide, so each dropped block is
    // counted by exactly one node — the first to tombstone it.
    assert_eq!(
        counter_sum(&cluster, "dfs.retire.blocks"),
        report.blocks_dropped as u64,
        "each dropped block retired exactly once across the cluster"
    );
    assert!(
        report.cache_bytes_freed > 0,
        "warmed frame caches released bytes"
    );

    // Retirement is idempotent: a second pass drops nothing more.
    let second = cluster.apply_retention();
    assert_eq!(
        second.blocks_dropped, 0,
        "second pass finds nothing to drop"
    );
    assert_eq!(second.raw_bytes_dropped, 0);
    assert_eq!(second.cache_bytes_freed, 0);

    // The rollup is now the authority for the dropped day — still exact.
    let got = client
        .query(&q_dropped_day)
        .run()
        .expect("post-retention query");
    assert!(
        got.rollup_hits > 0,
        "dropped history served from the rollup"
    );
    assert_bit_identical(&got, &truth, "post-retention rollup answer");

    // Bounded memory: the materialized rollup is smaller than the raw
    // bytes it replaced.
    let rollup = cluster.rollup().expect("rollup store");
    assert!(rollup.estimated_bytes() > 0);
    assert!(
        rollup.estimated_bytes() < report.raw_bytes_dropped,
        "rollup memory ({}) must undercut the raw bytes dropped ({})",
        rollup.estimated_bytes(),
        report.raw_bytes_dropped
    );

    // Fine-grained history over a dropped block is gone from raw storage;
    // once the async invalidations settle, the caches agree.
    std::thread::sleep(Duration::from_millis(100));
    let fine = client
        .query(&q_fine_dropped)
        .run()
        .expect("fine query after drop");
    assert!(
        fine.cells.is_empty(),
        "raw history behind the horizon reads empty after retention"
    );

    cluster.shutdown();
}
