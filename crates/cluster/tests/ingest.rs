//! Live-ingest equivalence (DESIGN.md §13): after streaming every append
//! batch into a live cluster, each query's answer is **bit-for-bit** equal
//! to the answer a cold cluster computes over the full, final dataset.
//!
//! The dataset uses `value_quantum = 1/64`, so every attribute value (and
//! its square) is exactly representable in an f64 and summations commute —
//! the exact-equality assertions below hold regardless of the order in
//! which partials were merged (delta-patched live vs. folded cold).

use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use stash_cluster::{run_stream, AppendSink, ClusterConfig, IngestConfig, Mode, SimCluster};
use stash_data::GeneratorConfig;
use stash_dfs::{BlockKey, DiskModel};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{AggQuery, QueryResult};
use stash_net::{FaultPlan, NetConfig};

fn live_day() -> TimeBin {
    TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
}

fn live_blocks() -> Vec<(Geohash, TimeBin)> {
    let day = live_day();
    ["9q8", "9q9", "9qb", "9qc"]
        .iter()
        .map(|g| (Geohash::from_str(g).unwrap(), day))
        .collect()
}

/// A live cluster config; `live` toggles whether the blocks boot truncated
/// (streaming completes them) or fully sealed (the cold ground truth).
fn config(live: bool) -> ClusterConfig {
    ClusterConfig::builder()
        .n_nodes(4)
        .coord_workers(2)
        .service_workers(2)
        .fetch_workers(2)
        .mode(Mode::Stash)
        .disk(DiskModel::free())
        .net(NetConfig {
            base_latency: Duration::from_micros(20),
            ..NetConfig::default()
        })
        .generator(GeneratorConfig {
            seed: 11,
            obs_per_deg2_per_day: 40.0,
            max_obs_per_block: 10_000,
            value_quantum: 1.0 / 64.0,
        })
        .scan_cost_per_obs(Duration::ZERO)
        .cell_service_cost(Duration::ZERO)
        .live_blocks(if live { live_blocks() } else { Vec::new() })
        .live_base_fraction(0.5)
        .build()
        .expect("ingest test config is valid")
}

/// A pan/dice workload over the live blocks' region (tiles `9q8`/`9q9`/
/// `9qb`/`9qc`: lat 36.5–39.4, lon −123.75–−120.9) at several resolutions,
/// plus one wide query whose cells span partitions.
fn workload() -> Vec<AggQuery> {
    let day = TimeRange::whole_day(2015, 2, 2);
    let mut queries = vec![
        // County-sized dice inside the streamed region (tiles 9q8/9q9).
        AggQuery::new(
            BBox::from_corner_extent(36.8, -123.0, 0.8, 1.4),
            day,
            4,
            TemporalRes::Day,
        ),
        // Pan one viewport east.
        AggQuery::new(
            BBox::from_corner_extent(36.8, -121.6, 0.8, 1.4),
            day,
            4,
            TemporalRes::Day,
        ),
        // Zoom out over all four live tiles, coarser space.
        AggQuery::new(
            BBox::from_corner_extent(36.0, -124.5, 4.0, 4.5),
            day,
            3,
            TemporalRes::Day,
        ),
        // Fine dice at hourly resolution.
        AggQuery::new(
            BBox::from_corner_extent(37.0, -122.6, 0.3, 0.5),
            day,
            5,
            TemporalRes::Hour,
        ),
        // Wide continental query: mostly sealed blocks, a few live ones.
        AggQuery::new(
            BBox::from_corner_extent(30.0, -125.0, 12.0, 20.0),
            day,
            2,
            TemporalRes::Day,
        ),
        // Continental overview at res 1: caches the coarse cell "9" on a
        // *different* node than the block owner (coarse cells hash by their
        // own label), so appends must invalidate it remotely.
        AggQuery::new(
            BBox::from_corner_extent(30.0, -125.0, 12.0, 20.0),
            day,
            1,
            TemporalRes::Day,
        ),
    ];
    // A second day entirely outside the streamed blocks — must be
    // untouched by ingest.
    queries.push(AggQuery::new(
        BBox::from_corner_extent(36.8, -123.0, 0.8, 1.4),
        TimeRange::whole_day(2015, 6, 10),
        4,
        TemporalRes::Day,
    ));
    queries
}

fn assert_bit_identical(live: &QueryResult, cold: &QueryResult, what: &str) {
    assert_eq!(
        live.cells.len(),
        cold.cells.len(),
        "{what}: cell count diverged"
    );
    for (l, c) in live.cells.iter().zip(&cold.cells) {
        assert_eq!(l.key, c.key, "{what}: key order diverged");
        assert_eq!(
            l.summary, c.summary,
            "{what}: summary for {:?} not bit-identical",
            l.key
        );
    }
}

fn ground_truth(queries: &[AggQuery]) -> Vec<QueryResult> {
    let cold = SimCluster::new(config(false));
    let client = cold.client();
    let truth = queries
        .iter()
        .map(|q| client.query(q).run().expect("cold query"))
        .collect();
    cold.shutdown();
    truth
}

/// The headline test: warm the live cluster's caches on partial data (so
/// appends exercise the delta-patch path against resident Cells), stream
/// every batch to quiescence, and demand exact equality with the cold
/// ground truth — twice, so both the post-stream recompute path and the
/// patched-cache path are checked.
#[test]
fn streamed_cluster_matches_cold_cluster_bit_for_bit() {
    let queries = workload();
    let truth = ground_truth(&queries);

    let cluster = SimCluster::new(config(true));
    let client = cluster.client();
    // Warm caches on the truncated base data.
    for q in &queries {
        client.query(q).run().expect("warm-up on partial data");
    }

    let stream = cluster.live_stream(128);
    let expected_rows = stream.total_rows();
    assert!(expected_rows > 0, "stream must have a tail to deliver");
    let sink = Arc::new(cluster.ingest_client());
    let stats = run_stream(&stream, sink, IngestConfig::default());
    assert_eq!(stats.rows_sent, expected_rows as u64, "every row delivered");
    assert_eq!(stats.batches_failed, 0, "no lane abandoned its block");
    assert_eq!(
        cluster.live_source().expect("live cluster").appended_rows(),
        expected_rows,
        "storage converged to the full dataset"
    );

    // First pass: stale/patched caches against the full data.
    for (q, want) in queries.iter().zip(&truth) {
        let got = client.query(q).run().expect("post-stream query");
        assert_bit_identical(&got, want, "post-stream");
    }
    // Second pass: answers served from the (now settled) caches.
    for (q, want) in queries.iter().zip(&truth) {
        let got = client.query(q).run().expect("settled query");
        assert_bit_identical(&got, want, "settled");
    }

    // The delta-patch path must actually have fired — otherwise this test
    // only exercised invalidation.
    let patched: u64 = (0..cluster.n_nodes())
        .map(|i| cluster.node(i).obs.counter("ingest.cells_patched").get())
        .sum();
    let invalidated: u64 = (0..cluster.n_nodes())
        .map(|i| {
            cluster
                .node(i)
                .obs
                .counter("ingest.cells_invalidated")
                .get()
        })
        .sum();
    assert!(patched > 0, "no resident Cell was delta-patched");
    assert!(invalidated > 0, "remote caches must have been invalidated");
    cluster.shutdown();
}

/// Ablation: with `ingest_patch = false` every affected Cell is invalidated
/// instead of patched. Answers must still be exact — just recomputed.
#[test]
fn invalidate_everything_ablation_is_still_exact() {
    let queries = workload();
    let truth = ground_truth(&queries);

    let mut cfg = config(true);
    cfg.ingest_patch = false;
    let cluster = SimCluster::new(cfg);
    let client = cluster.client();
    for q in &queries {
        client.query(q).run().expect("warm-up on partial data");
    }
    let stream = cluster.live_stream(128);
    let sink = Arc::new(cluster.ingest_client());
    let stats = run_stream(&stream, sink, IngestConfig::default());
    assert_eq!(stats.batches_failed, 0);

    for (q, want) in queries.iter().zip(&truth) {
        let got = client.query(q).run().expect("ablation query");
        assert_bit_identical(&got, want, "ablation");
    }
    let patched: u64 = (0..cluster.n_nodes())
        .map(|i| cluster.node(i).obs.counter("ingest.cells_patched").get())
        .sum();
    assert_eq!(patched, 0, "ablation must never patch");
    cluster.shutdown();
}

/// The equivalence holds under fabric drops plus one block owner crashing
/// mid-stream: producer retries and replica-chain failover deliver every
/// batch anyway (appends are seq-idempotent against the shared storage),
/// and after a restart the recovered node answers exactly.
#[test]
fn streamed_equivalence_survives_drops_and_owner_crash() {
    let queries = workload();
    let truth = ground_truth(&queries);

    let mut cfg = config(true);
    // Tight deadlines so retries and failover complete in test time.
    cfg.sub_rpc_timeout = Duration::from_millis(250);
    cfg.retry_backoff = Duration::from_millis(5);
    cfg.client_retries = 9;
    let mut cluster = SimCluster::new(cfg);
    let client = cluster.client();
    for q in &queries {
        client.query(q).run().expect("warm-up on partial data");
    }

    cluster
        .router()
        .install_faults(FaultPlan::new(1234).drop_all(0.05));

    let stream = cluster.live_stream(64);
    let expected_rows = stream.total_rows();
    let sink = Arc::new(cluster.ingest_client());
    // The owner of the first live block dies mid-stream.
    let (victim_block, victim_day) = stream.blocks()[0];
    let victim = sink.owner_of(BlockKey {
        geohash: victim_block,
        day: victim_day,
    });
    let crash_after = {
        let cluster_router = cluster.router().clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            cluster_router.crash_node(stash_net::NodeId(victim));
        })
    };
    let stats = run_stream(&stream, sink, IngestConfig::default());
    crash_after.join().unwrap();
    assert_eq!(
        stats.rows_sent, expected_rows as u64,
        "failover must deliver every row despite drops and the crash"
    );
    assert_eq!(stats.batches_failed, 0);

    cluster.router().clear_faults();
    cluster.restart_node(victim);
    for (q, want) in queries.iter().zip(&truth) {
        let got = client.query(q).run().expect("post-chaos query");
        assert_bit_identical(&got, want, "post-chaos");
    }
    cluster.shutdown();
}
