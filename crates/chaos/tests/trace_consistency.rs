//! Traces must stay honest under faults.
//!
//! Every answered query carries a [`QueryTrace`] whose `local` view is a set
//! of *disjoint* wall-clock segments measured on the coordinator thread
//! (route, merge, DFS, retry, wait, ...). Disjointness is a structural
//! claim, so it admits a structural check: the segments can never sum to
//! more than the coordinator's own wall clock, which in turn can never
//! exceed the latency the client observed — no matter how many messages the
//! fabric drops, duplicates, or delays along the way. If instrumentation
//! ever double-counts a segment (say, charging a backoff nap to both retry
//! and wait), faulty runs are exactly where the books stop balancing, so
//! this scenario drives the full grid workload through a 5% loss plan and
//! audits every trace.

use stash_chaos::{chaos_config, grid_queries};
use stash_cluster::{Mode, SimCluster};
use stash_net::FaultPlan;
use std::time::Instant;

#[test]
fn traces_stay_consistent_under_faults() {
    let mut config = chaos_config(Mode::Stash);
    config.sub_rpc_timeout = std::time::Duration::from_millis(80);
    config.retry_backoff = std::time::Duration::from_millis(2);
    let queries = grid_queries(5); // 100 interactions, cold round then cached

    let cluster = SimCluster::new(config);
    cluster
        .router()
        .install_faults(FaultPlan::new(2024).drop_all(0.05));
    let client = cluster.client();

    let mut audited = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let start = Instant::now();
        let (result, trace) = match client.query(q).traced().run() {
            Ok(ok) => ok,
            Err(e) => panic!("query {i} failed under 5% loss: {e:?}"),
        };
        let client_wall_ns = start.elapsed().as_nanos() as u64;
        assert!(!result.cells.is_empty(), "query {i} returned no cells");

        // The coordinator's disjoint stage segments fit inside its wall
        // clock, and its wall clock fits inside the client's.
        assert!(trace.wall_ns > 0, "query {i}: empty wall clock");
        assert!(
            trace.local.sum_ns() <= trace.wall_ns,
            "query {i}: local stages sum to {} ns > coordinator wall {} ns",
            trace.local.sum_ns(),
            trace.wall_ns
        );
        assert!(
            trace.wall_ns <= client_wall_ns,
            "query {i}: coordinator wall {} ns > client-visible {} ns",
            trace.wall_ns,
            client_wall_ns
        );
        audited += 1;
    }

    assert_eq!(audited, queries.len());
    assert!(
        cluster.router().stats().messages_dropped() > 0,
        "the fault plan never actually dropped anything"
    );

    // The stage accounting above already confirms frame-cache time is
    // inside the dfs segment (local.sum ≤ wall held for every trace);
    // now confirm the cache actually ran: the grid's 1.2° step is finer
    // than a res-3 block's extent, so neighboring queries re-touch blocks
    // and must score hits even within the cold round.
    let kernel = |name: &str| -> u64 {
        (0..cluster.n_nodes())
            .map(|i| cluster.node(i).obs.counter(name).get())
            .sum()
    };
    assert!(
        kernel("dfs.frame_cache.miss") > 0,
        "cold round must miss the frame cache"
    );
    assert!(
        kernel("dfs.frame_cache.hit") > 0,
        "overlapping grid queries must hit the frame cache"
    );
    assert!(kernel("dfs.rows_decoded") > 0, "misses must decode rows");
    cluster.shutdown();
}
