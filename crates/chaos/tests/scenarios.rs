//! Deterministic chaos scenarios over the simulated STASH cluster.
//!
//! Every scenario scripts faults against the fabric's fault plane and holds
//! the system to one standard: **the answer never changes**. A fault may
//! cost latency (timeouts, retries, failover to DFS replicas) but the cells
//! a client receives must be byte-for-byte the cells a fault-free cluster
//! returns for the same workload.

use stash_chaos::{assert_results_match, chaos_config, grid_queries, ground_truth, run_workload};
use stash_cluster::{Mode, SimCluster};
use stash_dfs::Partitioner;
use stash_geo::{BBox, TemporalRes, TimeRange};
use stash_model::AggQuery;
use stash_net::FaultPlan;
use std::time::Duration;

fn county_query() -> AggQuery {
    AggQuery::new(
        BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2),
        TimeRange::whole_day(2015, 2, 2),
        4,
        TemporalRes::Day,
    )
}

/// A viewport wide enough that its Cells land on every node of a 4-node
/// ring, so partition scenarios are guaranteed to hit a stranded owner.
/// Placement hashes the geohash-2 prefix (~5.6°×11.25° tiles), so only a
/// continent-scale view spans enough prefixes to touch all owners.
fn wide_query() -> AggQuery {
    AggQuery::new(
        BBox::from_corner_extent(22.0, -128.0, 30.0, 60.0),
        TimeRange::whole_day(2015, 2, 2),
        2,
        TemporalRes::Day,
    )
}

/// ISSUE acceptance scenario: a 5% uniform message-drop plan (plus a pinch
/// of duplication and jitter), ≥200 client queries, zero errors, results
/// identical to a fault-free run.
#[test]
fn lossy_links_never_surface_to_the_client() {
    let mut config = chaos_config(Mode::Stash);
    config.sub_rpc_timeout = Duration::from_millis(80);
    config.retry_backoff = Duration::from_millis(2);
    config.client_timeout = Duration::from_millis(1000);
    let queries = grid_queries(10); // 200 interactions
    let truth = ground_truth(config.clone(), &queries);

    let cluster = SimCluster::new(config);
    cluster.router().install_faults(
        FaultPlan::new(42)
            .drop_all(0.05)
            .duplicate_all(0.02)
            .delay_all(Duration::from_millis(1), 0.10),
    );
    let client = cluster.client();
    let results = run_workload(&client, &queries);

    let mut errors = 0usize;
    for (i, (got, want)) in results.iter().zip(&truth).enumerate() {
        match got {
            Ok(r) => assert_results_match(r, want, &format!("query {i}")),
            Err(e) => {
                errors += 1;
                eprintln!("query {i} failed under 5% loss: {e:?}");
            }
        }
    }
    assert_eq!(
        errors, 0,
        "lossy fabric leaked {errors} errors to the client"
    );
    assert!(
        cluster.router().stats().messages_dropped() > 0,
        "the fault plan never actually dropped anything"
    );
    cluster.shutdown();
}

/// Same acceptance bar for the bare storage system: Basic mode has no STASH
/// cache to hide behind, so every query rides the FetchPartials
/// scatter/gather — retries and replica failover must carry it alone.
#[test]
fn basic_mode_scatter_gather_survives_drops() {
    let mut config = chaos_config(Mode::Basic);
    config.sub_rpc_timeout = Duration::from_millis(80);
    config.retry_backoff = Duration::from_millis(2);
    config.client_timeout = Duration::from_millis(1000);
    let queries = grid_queries(2); // 40 interactions, all cold
    let truth = ground_truth(config.clone(), &queries);

    let cluster = SimCluster::new(config);
    cluster
        .router()
        .install_faults(FaultPlan::new(1234).drop_all(0.05));
    let client = cluster.client();
    for (i, (got, want)) in run_workload(&client, &queries)
        .iter()
        .zip(&truth)
        .enumerate()
    {
        let r = got
            .as_ref()
            .unwrap_or_else(|e| panic!("query {i} failed: {e:?}"));
        assert_results_match(r, want, &format!("basic query {i}"));
    }
    cluster.shutdown();
}

/// A 3-way partition strands two owners outside the coordinator's group.
/// The coordinator must walk the replica chain *inside its group* and still
/// answer exactly; after healing, the stranded nodes serve again.
#[test]
fn three_way_partition_serves_exactly_from_in_group_replicas() {
    let mut config = chaos_config(Mode::Stash);
    config.sub_rpc_timeout = Duration::from_millis(150);
    config.retry_backoff = Duration::from_millis(3);
    config.client_timeout = Duration::from_secs(20);
    let q = wide_query();

    // Precondition: the viewport really does have owners in the stranded
    // groups, otherwise this scenario wouldn't test anything.
    let partitioner = Partitioner::new(config.n_nodes, config.partition_prefix_len);
    let owners: std::collections::BTreeSet<usize> = q
        .target_keys(200_000)
        .expect("valid query")
        .iter()
        .map(|k| partitioner.owner_of_cell(k))
        .collect();
    assert!(
        owners.contains(&2) && owners.contains(&3),
        "wide query must place Cells on the stranded nodes (owners: {owners:?})"
    );

    let truth = ground_truth(config.clone(), std::slice::from_ref(&q));
    let cluster = SimCluster::new(config);
    let client = cluster.client();

    // Groups are fabric endpoints: nodes 0..4 plus the client gateway (4),
    // which stays with the coordinator.
    cluster
        .router()
        .set_partition(&[vec![0, 1, 4], vec![2], vec![3]]);
    let dropped_before = cluster.router().stats().messages_dropped();
    let r = client
        .query(&q)
        .at(0)
        .run()
        .expect("in-group replica chain must keep the answer exact");
    assert_results_match(&r, &truth[0], "partitioned query");
    assert!(
        cluster.router().stats().messages_dropped() > dropped_before,
        "partition dropped nothing — scenario never crossed group lines"
    );

    cluster.router().heal_partition();
    let healed = client
        .query(&q)
        .at(2)
        .run()
        .expect("healed fabric serves again");
    assert_results_match(&healed, &truth[0], "post-heal query");
    cluster.shutdown();
}

/// Crash a coordinator while a query is in flight: the client must get a
/// timely answer-or-error (never a hang), the round-robin client must route
/// around the corpse, and a restarted coordinator must serve again.
#[test]
fn coordinator_crash_mid_scatter_fails_fast_and_cluster_recovers() {
    let mut config = chaos_config(Mode::Stash);
    config.client_timeout = Duration::from_secs(2);
    let queries = grid_queries(1); // 20 distinct viewports
    let truth = ground_truth(config.clone(), &queries);

    let mut cluster = SimCluster::new(config);
    let client = cluster.client();
    let victim = 1usize;
    let q = &queries[5];

    let in_flight = std::thread::scope(|s| {
        let racer = client.clone();
        let h = s.spawn(move || racer.query(q).at(victim).run());
        std::thread::sleep(Duration::from_millis(1));
        cluster.crash_node(victim);
        h.join()
            .expect("in-flight query must return, not hang or panic")
    });
    // The race is fair game either way: a reply that beat the crash must be
    // exact; a reply that lost it must be an error, not a wrong answer.
    if let Ok(r) = &in_flight {
        assert_results_match(r, &truth[5], "reply that raced the crash");
    }

    // Direct routing at the corpse fails fast.
    assert!(
        client.query(q).at(victim).run().is_err(),
        "a crashed coordinator cannot answer"
    );

    // The retrying client routes around it: full workload, zero errors.
    for (i, (got, want)) in run_workload(&client, &queries)
        .iter()
        .zip(&truth)
        .enumerate()
    {
        let r = got
            .as_ref()
            .unwrap_or_else(|e| panic!("query {i} failed with a node down: {e:?}"));
        assert_results_match(r, want, &format!("query {i} with node {victim} down"));
    }

    cluster.restart_node(victim);
    let back = client
        .query(q)
        .at(victim)
        .run()
        .expect("restarted node coordinates again");
    assert_results_match(&back, &truth[5], "post-restart coordination");
    cluster.shutdown();
}

/// Crash the *owner* of a viewport's Cells: sub-queries fail over to DFS
/// replicas and stay exact. On restart the node comes back with an empty
/// STASH graph and must repopulate it by recomputation from DFS — the
/// PLM-driven recovery path.
#[test]
fn owner_crash_fails_over_and_restart_recomputes_from_dfs() {
    let config = chaos_config(Mode::Stash);
    let q = county_query();
    let keys = q.target_keys(200_000).expect("valid query");
    let partitioner = Partitioner::new(config.n_nodes, config.partition_prefix_len);
    let owner = partitioner.owner_of_cell(&keys[0]);
    let coordinator = (owner + 1) % config.n_nodes;
    let truth = ground_truth(config.clone(), std::slice::from_ref(&q));

    let mut cluster = SimCluster::new(config);
    let client = cluster.client();

    cluster.crash_node(owner);
    let r = client
        .query(&q)
        .at(coordinator)
        .run()
        .expect("dead-owner sub-queries must fail over to DFS replicas");
    assert_results_match(&r, &truth[0], "query with the owner down");

    cluster.restart_node(owner);
    assert_eq!(
        cluster.node_stats()[owner].graph_cells,
        0,
        "a restarted node must come back with an empty STASH graph"
    );
    let again = client
        .query(&q)
        .at(coordinator)
        .run()
        .expect("query after owner restart");
    assert_results_match(&again, &truth[0], "query after owner restart");
    assert!(
        cluster.node_stats()[owner].graph_cells > 0,
        "recovery must recompute the owner's Cells from DFS"
    );
    cluster.shutdown();
}

/// The schedule of a [`FaultPlan`] is a pure function of its seed: identical
/// plans agree on every decision, different seeds diverge, and link-scoped
/// rules never leak onto other links.
#[test]
fn fault_schedules_are_pure_functions_of_the_seed() {
    let build = |seed: u64| {
        FaultPlan::new(seed)
            .drop_all(0.05)
            .duplicate_all(0.02)
            .delay_all(Duration::from_millis(2), 0.2)
    };
    let a = build(7);
    let b = build(7);
    let c = build(8);
    let mut diverged = false;
    for src in 0..3 {
        for dst in 0..3 {
            if src == dst {
                continue;
            }
            for k in 0..200 {
                assert_eq!(
                    a.decide(src, dst, k),
                    b.decide(src, dst, k),
                    "same seed, same link, same message — different fate"
                );
                diverged |= a.decide(src, dst, k) != c.decide(src, dst, k);
            }
        }
    }
    assert!(diverged, "changing the seed changed nothing");

    let scoped = FaultPlan::new(7).drop_link(0, 1, 1.0);
    for k in 0..50 {
        assert!(
            scoped.decide(0, 1, k).drop,
            "scoped rule must fire on its link"
        );
        assert!(
            !scoped.decide(1, 0, k).drop,
            "reverse direction is a different link"
        );
        assert!(!scoped.decide(2, 1, k).drop, "other links are untouched");
    }
}
