//! PR 9 regression scenarios: the sharded delivery fabric and the batched
//! scatter/gather must be *invisible* to correctness.
//!
//! Two claims are pinned here (the router-level twin of the first —
//! identical per-link drop/duplicate/delay schedules — lives in
//! `stash-net`'s `fault_schedule_is_identical_across_shard_counts`):
//!
//! 1. **Shard-count independence** — the same `FaultPlan` seed produces
//!    identical query answers whether the fabric runs 1 delivery shard or
//!    K. Per-link fault counters live on the destination's one owning
//!    shard, so the deterministic schedule cannot depend on K.
//! 2. **Batch equivalence** — batched scatter (`Msg::SubQueryBatch`, one
//!    envelope per owner) is bit-for-bit equivalent to the per-fragment
//!    ablation (one `Msg::SubQuery` per fragment), fault-free and lossy.

use stash_chaos::{assert_results_match, chaos_config, grid_queries, ground_truth, run_workload};
use stash_cluster::{Mode, SimCluster};
use stash_net::FaultPlan;
use std::time::Duration;

fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .drop_all(0.05)
        .duplicate_all(0.02)
        .delay_all(Duration::from_millis(1), 0.10)
}

/// Run the standard grid workload under a seeded lossy plan with a fixed
/// shard count; return the per-query answers (all must succeed).
fn run_sharded(shards: usize, seed: u64) -> Vec<stash_model::QueryResult> {
    let mut config = chaos_config(Mode::Stash);
    config.net.delivery_shards = shards;
    config.sub_rpc_timeout = Duration::from_millis(80);
    config.retry_backoff = Duration::from_millis(2);
    config.client_timeout = Duration::from_millis(1000);
    let queries = grid_queries(5); // 100 interactions
    let cluster = SimCluster::new(config);
    assert_eq!(cluster.router().n_shards(), shards);
    cluster.router().install_faults(lossy_plan(seed));
    let client = cluster.client();
    let results: Vec<_> = run_workload(&client, &queries)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("query {i} failed with {shards} shards: {e:?}")))
        .collect();
    cluster.shutdown();
    results
}

/// Same seed, 1 vs 4 delivery shards: every answer is bit-for-bit the
/// fault-free answer in both runs — sharding the fabric changed nothing a
/// client can see.
#[test]
fn same_seed_same_answers_with_one_vs_many_shards() {
    let mut config = chaos_config(Mode::Stash);
    config.client_timeout = Duration::from_millis(1000);
    let queries = grid_queries(5);
    let truth = ground_truth(config, &queries);

    let single = run_sharded(1, 0xC0FFEE);
    let sharded = run_sharded(4, 0xC0FFEE);
    assert_eq!(single.len(), sharded.len());
    for (i, ((a, b), want)) in single.iter().zip(&sharded).zip(&truth).enumerate() {
        assert_results_match(a, want, &format!("query {i}, 1 shard vs truth"));
        assert_results_match(b, want, &format!("query {i}, 4 shards vs truth"));
        assert_results_match(a, b, &format!("query {i}, 1 vs 4 shards"));
    }
}

/// Batched scatter/gather vs the per-fragment ablation on a clean wire:
/// tiny fragments force real multi-fragment batches, and every answer must
/// be bit-for-bit identical between the two modes.
#[test]
fn batched_scatter_is_bit_for_bit_equivalent_to_per_fragment() {
    let run = |batch: bool| {
        let mut config = chaos_config(Mode::Stash);
        config.client_timeout = Duration::from_millis(1000);
        // Force multi-fragment owner shares even on small viewports.
        config.scatter_fragment_keys = 4;
        config.batch_scatter = batch;
        let queries = grid_queries(5);
        let cluster = SimCluster::new(config);
        let client = cluster.client();
        let results: Vec<_> = run_workload(&client, &queries)
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|e| panic!("query {i} failed (batch={batch}): {e:?}")))
            .collect();
        let envelopes = cluster.router().stats().messages_sent();
        cluster.shutdown();
        (results, envelopes)
    };
    let (batched, batched_envelopes) = run(true);
    let (single, single_envelopes) = run(false);
    assert_eq!(batched.len(), single.len());
    for (i, (a, b)) in batched.iter().zip(&single).enumerate() {
        assert_results_match(a, b, &format!("query {i}, batched vs per-fragment"));
    }
    // The whole point of batching: same answers, strictly fewer envelopes.
    assert!(
        batched_envelopes < single_envelopes,
        "batching did not reduce wire trips: batched {batched_envelopes} vs single {single_envelopes}"
    );
}

/// Batch equivalence under the lossy-links acceptance bar: with tiny
/// fragments, per-fragment failures inside a batch reply must flow through
/// the straggler/retry path and still produce exact answers.
#[test]
fn batched_scatter_survives_drops_exactly() {
    let mut config = chaos_config(Mode::Stash);
    config.sub_rpc_timeout = Duration::from_millis(80);
    config.retry_backoff = Duration::from_millis(2);
    config.client_timeout = Duration::from_millis(1000);
    config.scatter_fragment_keys = 4;
    config.batch_scatter = true;
    let queries = grid_queries(5);
    let truth = ground_truth(config.clone(), &queries);

    let cluster = SimCluster::new(config);
    cluster.router().install_faults(lossy_plan(0xBADC0DE));
    let client = cluster.client();
    for (i, (got, want)) in run_workload(&client, &queries)
        .iter()
        .zip(&truth)
        .enumerate()
    {
        let r = got
            .as_ref()
            .unwrap_or_else(|e| panic!("batched query {i} failed under loss: {e:?}"));
        assert_results_match(r, want, &format!("batched lossy query {i}"));
    }
    assert!(
        cluster.router().stats().messages_dropped() > 0,
        "the fault plan never actually dropped anything"
    );
    cluster.shutdown();
}
