//! Chaos scenario: live ingestion under a lossy fabric while a front-end
//! keeps querying (DESIGN.md §13).
//!
//! Two properties are asserted:
//!
//! 1. **Monotonic reads during the stream** — rows are only ever appended,
//!    so for any cell a later answer's observation count is never smaller
//!    than an earlier one (patched caches move forward; recomputed cells
//!    read storage that only grows).
//! 2. **Exact convergence after quiescence** — once every batch is acked,
//!    answers are bit-for-bit equal to a sealed cluster built on the full
//!    dataset, drops notwithstanding.

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use stash_chaos::{assert_results_match, chaos_config, ground_truth};
use stash_cluster::{run_stream, IngestConfig, Mode, SimCluster};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{AggQuery, CellKey};
use stash_net::FaultPlan;

fn live_day() -> TimeBin {
    TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
}

/// Queries over the live tiles (`9q8`/`9q9`/`9qb`/`9qc`; lat 36.5–39.4,
/// lon −123.75–−120.9) at mixed resolutions.
fn live_queries() -> Vec<AggQuery> {
    let day = TimeRange::whole_day(2015, 2, 2);
    vec![
        AggQuery::new(
            BBox::from_corner_extent(36.8, -123.0, 0.8, 1.4),
            day,
            4,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(36.0, -124.5, 4.0, 4.5),
            day,
            3,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(30.0, -125.0, 12.0, 20.0),
            day,
            1,
            TemporalRes::Day,
        ),
    ]
}

#[test]
fn live_stream_under_drops_reads_monotonically_and_converges_exactly() {
    let mut config = chaos_config(Mode::Stash);
    config.generator.value_quantum = 1.0 / 64.0;
    let day = live_day();
    config.live_blocks = ["9q8", "9q9", "9qb", "9qc"]
        .iter()
        .map(|g| (Geohash::from_str(g).unwrap(), day))
        .collect();
    let queries = live_queries();

    // Ground truth: the same config sealed (no live blocks) is the full
    // final dataset from boot.
    let mut sealed = config.clone();
    sealed.live_blocks.clear();
    let truth = ground_truth(sealed, &queries);

    let cluster = SimCluster::new(config);
    let client = cluster.client();
    for q in &queries {
        client.query(q).run().expect("warm-up on partial data");
    }

    cluster
        .router()
        .install_faults(FaultPlan::new(77).drop_all(0.05));

    // Stream on a producer thread; the main thread plays the front-end.
    let stream = cluster.live_stream(64);
    let expected_rows = stream.total_rows() as u64;
    let sink = Arc::new(cluster.ingest_client());
    let producer = std::thread::spawn(move || run_stream(&stream, sink, IngestConfig::default()));

    let mut last_counts: HashMap<CellKey, u64> = HashMap::new();
    let mut rounds = 0u32;
    while !producer.is_finished() || rounds < 3 {
        for q in &queries {
            let r = client.query(q).run().expect("query during ingest");
            for cell in &r.cells {
                let count = cell.summary.count();
                let prev = last_counts.entry(cell.key).or_insert(0);
                assert!(
                    count >= *prev,
                    "cell {:?} went backwards mid-stream: {} < {}",
                    cell.key,
                    count,
                    *prev
                );
                *prev = count;
            }
        }
        rounds += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = producer.join().expect("producer thread");
    assert_eq!(stats.rows_sent, expected_rows, "drops must not lose rows");
    assert_eq!(stats.batches_failed, 0, "no lane abandoned its block");

    // Quiesced: answers equal the sealed ground truth exactly.
    cluster.router().clear_faults();
    for (q, want) in queries.iter().zip(&truth) {
        let got = client.query(q).run().expect("post-quiesce query");
        assert_results_match(&got, want, "post-quiesce");
    }
    cluster.shutdown();
}
