//! Chaos scenario: continuous rollups under a lossy fabric with an owner
//! crash mid-stream (DESIGN.md §17).
//!
//! Pinned properties:
//!
//! 1. **Watermark monotonicity** — sampled concurrently with the stream,
//!    the rollup watermark never moves backwards, drops and the crash
//!    notwithstanding.
//! 2. **Exact convergence** — after quiescence and the victim's restart,
//!    every live block has sealed (the watermark sits at the domain end)
//!    and rollup-served answers are **bit-for-bit** equal to a sealed
//!    cluster built on the full dataset.

use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use stash_chaos::{chaos_config, ground_truth};
use stash_cluster::{run_stream, AppendSink, IngestConfig, Mode, RollupPolicy, SimCluster};
use stash_dfs::BlockKey;
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{AggQuery, Level, QueryResult};
use stash_net::FaultPlan;

fn live_day() -> TimeBin {
    TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
}

fn region() -> BBox {
    BBox::from_corner_extent(36.0, -124.5, 4.0, 4.5)
}

fn assert_bit_identical(got: &QueryResult, want: &QueryResult, what: &str) {
    assert_eq!(
        got.cells.len(),
        want.cells.len(),
        "{what}: cell count diverged"
    );
    for (g, w) in got.cells.iter().zip(&want.cells) {
        assert_eq!(g.key, w.key, "{what}: key order diverged");
        assert_eq!(
            g.summary, w.summary,
            "{what}: summary for {:?} not bit-identical",
            g.key
        );
    }
}

#[test]
fn rollup_watermark_is_monotone_and_converges_exactly_under_chaos() {
    let mut config = chaos_config(Mode::Stash);
    config.generator.value_quantum = 1.0 / 64.0;
    // A one-month domain over the live tiles so Month rollup cells fit
    // under the all-sealed watermark (and backfill stays small).
    config.data_bbox = region();
    config.data_time = TimeRange::new(
        epoch_seconds(2015, 2, 1, 0, 0, 0),
        epoch_seconds(2015, 3, 1, 0, 0, 0),
    )
    .unwrap();
    let day = live_day();
    config.live_blocks = ["9q8", "9q9", "9qb", "9qc"]
        .iter()
        .map(|g| (Geohash::from_str(g).unwrap(), day))
        .collect();
    config.rollup = RollupPolicy::new(vec![
        Level::of(2, TemporalRes::Day).unwrap(),
        Level::of(1, TemporalRes::Month).unwrap(),
    ])
    .unwrap();

    let q_day = AggQuery::new(
        region(),
        TimeRange::whole_day(2015, 2, 2),
        2,
        TemporalRes::Day,
    );
    let q_month = AggQuery::new(region(), config.data_time, 1, TemporalRes::Month);
    let queries = vec![q_day, q_month];

    // Ground truth: same domain, sealed from boot, no rollups — the raw
    // recompute path is the authority the rollup must match bit for bit.
    let mut sealed = config.clone();
    sealed.live_blocks.clear();
    sealed.rollup = RollupPolicy::disabled();
    let truth = ground_truth(sealed, &queries);

    let mut cluster = SimCluster::new(config);
    let client = cluster.client();
    let rollup = cluster.rollup().expect("rollup store attached").clone();
    let horizon = epoch_seconds(2015, 3, 1, 0, 0, 0);
    assert!(
        rollup.watermark() < horizon,
        "live blocks hold the watermark"
    );

    cluster
        .router()
        .install_faults(FaultPlan::new(4242).drop_all(0.05));

    // Stream on a producer thread; the owner of the first live block dies
    // mid-stream (replica-chain failover must keep folding and sealing).
    let stream = cluster.live_stream(64);
    let expected_rows = stream.total_rows() as u64;
    let sink = Arc::new(cluster.ingest_client());
    let victim = sink.owner_of(BlockKey {
        geohash: stream.blocks()[0].0,
        day: stream.blocks()[0].1,
    });
    let crash_after = {
        let router = cluster.router().clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            router.crash_node(stash_net::NodeId(victim));
        })
    };
    let producer = std::thread::spawn(move || run_stream(&stream, sink, IngestConfig::default()));

    // Front-end side: sample the watermark while the stream runs — it
    // must never move backwards.
    let mut last_watermark = rollup.watermark();
    let mut rounds = 0u32;
    while !producer.is_finished() || rounds < 3 {
        let w = rollup.watermark();
        assert!(
            w >= last_watermark,
            "watermark went backwards mid-stream: {w} < {last_watermark}"
        );
        last_watermark = w;
        rounds += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = producer.join().expect("producer thread");
    crash_after.join().unwrap();
    assert_eq!(
        stats.rows_sent, expected_rows,
        "failover must deliver every row despite drops and the crash"
    );
    assert_eq!(stats.batches_failed, 0, "no lane abandoned its block");

    cluster.router().clear_faults();
    cluster.restart_node(victim);

    // Every live block sealed — even the victim's, applied by replicas —
    // so the watermark reached the domain end.
    assert_eq!(rollup.unsealed_blocks(), 0, "all live blocks sealed");
    assert_eq!(rollup.watermark(), horizon, "watermark at the domain end");

    // Rollup-served answers are bit-identical to the sealed ground truth,
    // from the restarted node's cluster as from any other.
    for (q, want) in queries.iter().zip(&truth) {
        let got = client.query(q).run().expect("post-chaos rollup query");
        assert!(got.rollup_hits > 0, "query must be rollup-served: {q:?}");
        assert_bit_identical(&got, want, "post-chaos rollup");
    }
    cluster.shutdown();
}
