//! # stash-chaos
//!
//! Deterministic fault-injection scenarios for the STASH cluster.
//!
//! The fabric's fault plane (`stash-net`) derives every drop/duplicate/delay
//! decision from a pure hash of `(plan seed, link, message index)`, so a
//! scenario's fault schedule is a function of its seed — rerunning a
//! scenario replays the same faults. The scenarios in `tests/` exercise the
//! robustness layer end to end: lossy links, multi-way partitions,
//! coordinator crashes mid-scatter, and owner crashes with PLM-driven
//! recovery, each asserting that answers stay **exactly** equal to a
//! fault-free run of the very same workload.
//!
//! This crate's library is the shared scenario toolkit: a cluster
//! configuration tuned for fault runs (tight sub-RPC deadlines so failover
//! happens in test time, generous client retries so transient faults never
//! surface to the user), a deterministic query workload, and exact-equality
//! checks between result sets.

use stash_cluster::{ClientError, ClusterClient, ClusterConfig, Mode, SimCluster};
use stash_dfs::DiskModel;
use stash_geo::{BBox, TemporalRes, TimeRange};
use stash_model::{AggQuery, QueryResult};
use stash_net::NetConfig;
use std::time::Duration;

/// A small cluster tuned for chaos runs: free disk and light data so the
/// interesting time is spent in the fault/retry machinery, sub-RPC
/// deadlines short enough that failover completes within a test, and
/// enough client retries that transient faults never become user errors.
pub fn chaos_config(mode: Mode) -> ClusterConfig {
    ClusterConfig::builder()
        .n_nodes(4)
        .coord_workers(2)
        .service_workers(2)
        .fetch_workers(2)
        .mode(mode)
        .disk(DiskModel::free())
        .net(NetConfig {
            base_latency: Duration::from_micros(20),
            ..NetConfig::default()
        })
        .generator(stash_data_config())
        .scan_cost_per_obs(Duration::ZERO)
        .cell_service_cost(Duration::ZERO)
        .sub_rpc_timeout(Duration::from_millis(250))
        .distress_timeout(Duration::from_millis(100))
        .client_timeout(Duration::from_secs(5))
        .sub_rpc_retries(2)
        .retry_backoff(Duration::from_millis(5))
        .client_retries(9)
        .build()
        .expect("chaos config is valid")
}

fn stash_data_config() -> stash_data::GeneratorConfig {
    stash_data::GeneratorConfig {
        seed: 3,
        obs_per_deg2_per_day: 30.0,
        max_obs_per_block: 10_000,
        value_quantum: 0.0,
    }
}

/// A deterministic workload: `rounds` passes over a 20-viewport grid of
/// county-sized day queries tiling the NAM interior. Repeated rounds make
/// the STASH cache matter (round 1 misses, later rounds hit), so faults are
/// exercised against both the scatter/gather path and the cached path.
pub fn grid_queries(rounds: usize) -> Vec<AggQuery> {
    let mut queries = Vec::with_capacity(rounds * 20);
    for _ in 0..rounds {
        for i in 0..20 {
            let lat = 30.0 + (i % 5) as f64 * 1.2;
            let lon = -110.0 + (i / 5) as f64 * 2.4;
            queries.push(AggQuery::new(
                BBox::from_corner_extent(lat, lon, 0.6, 1.2),
                TimeRange::whole_day(2015, 2, 2),
                4,
                TemporalRes::Day,
            ));
        }
    }
    queries
}

/// Run the whole workload through one client, keeping per-query outcomes.
pub fn run_workload(
    client: &ClusterClient,
    queries: &[AggQuery],
) -> Vec<Result<QueryResult, ClientError>> {
    queries.iter().map(|q| client.query(q).run()).collect()
}

/// Fault-free ground truth: boot a pristine cluster on the same
/// configuration, run the same workload, return its answers.
pub fn ground_truth(config: ClusterConfig, queries: &[AggQuery]) -> Vec<QueryResult> {
    let cluster = SimCluster::new(config);
    let client = cluster.client();
    let results = queries
        .iter()
        .map(|q| client.query(q).run().expect("fault-free run must not fail"))
        .collect();
    cluster.shutdown();
    results
}

/// Exact data equality between two answers: same cells, same keys, same
/// per-cell observation counts, same totals. Provenance counters
/// (cache_hits/misses) are deliberately *not* compared — failover changes
/// how an answer was computed, never what it says.
pub fn assert_results_match(got: &QueryResult, want: &QueryResult, ctx: &str) {
    assert_eq!(
        got.total_count(),
        want.total_count(),
        "{ctx}: total observation count diverged"
    );
    assert_eq!(
        got.cells.len(),
        want.cells.len(),
        "{ctx}: cell count diverged"
    );
    for (g, w) in got.cells.iter().zip(&want.cells) {
        assert_eq!(g.key, w.key, "{ctx}: cell keys diverged");
        assert_eq!(
            g.summary.count(),
            w.summary.count(),
            "{ctx}: summary for {:?} diverged",
            g.key
        );
    }
}
