//! Bit-packed geohash type: spatial label of a STASH Cell.
//!
//! A geohash of length *n* identifies one box of a recursive 32-way
//! subdivision of the globe (8×4 or 4×8 per step, alternating). STASH uses
//! geohash *length* as its spatial resolution: the paper's hierarchical edges
//! are exactly "drop / append one character" (§IV-B), and its lateral edges
//! are the 8 same-length boxes sharing a boundary (Fig. 1a).
//!
//! The representation packs up to 12 characters × 5 bits into a `u64`, so
//! parent / child / sibling arithmetic is shifts and masks. String form is
//! only materialized for display and wire formats.

use crate::base32;
use crate::bbox::BBox;
use crate::MAX_GEOHASH_LEN;
use serde::{Deserialize, Serialize};

/// A geohash: a variable-length (1..=12 characters) spatial index.
///
/// Ordering is lexicographic on the character string for equal lengths
/// (equivalently, numeric on the packed bits), which groups spatially
/// proximate boxes — the property Galileo-style DHT partitioning relies on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Geohash {
    /// Right-aligned 5-bit digits: the first character occupies the most
    /// significant used bits, the last character the 5 least significant.
    bits: u64,
    len: u8,
}

/// Error parsing or constructing a [`Geohash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeohashError {
    /// Length 0 or > [`MAX_GEOHASH_LEN`].
    BadLength(usize),
    /// A character outside the geohash base-32 alphabet.
    BadCharacter(char),
    /// Latitude/longitude outside valid ranges.
    BadCoordinate,
}

impl std::fmt::Display for GeohashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeohashError::BadLength(n) => {
                write!(f, "geohash length {n} not in 1..={MAX_GEOHASH_LEN}")
            }
            GeohashError::BadCharacter(c) => write!(f, "invalid geohash character {c:?}"),
            GeohashError::BadCoordinate => write!(f, "coordinate out of range"),
        }
    }
}

impl std::error::Error for GeohashError {}

impl Geohash {
    /// Encode a point at the given geohash length (spatial resolution).
    ///
    /// `lat` must be in `[-90, 90]`, `lon` in `[-180, 180]` (a longitude of
    /// exactly 180° wraps to −180°).
    pub fn encode(lat: f64, lon: f64, len: u8) -> Result<Self, GeohashError> {
        if len == 0 || len > MAX_GEOHASH_LEN {
            return Err(GeohashError::BadLength(len as usize));
        }
        if !lat.is_finite()
            || !lon.is_finite()
            || !(-90.0..=90.0).contains(&lat)
            || !(-180.0..=180.0).contains(&lon)
        {
            return Err(GeohashError::BadCoordinate);
        }
        let lon = if lon == 180.0 { -180.0 } else { lon };
        let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
        let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
        let mut bits: u64 = 0;
        let total_bits = len as usize * 5;
        for i in 0..total_bits {
            bits <<= 1;
            if i % 2 == 0 {
                // Even interleave positions refine longitude.
                let mid = (lon_lo + lon_hi) / 2.0;
                if lon >= mid {
                    bits |= 1;
                    lon_lo = mid;
                } else {
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if lat >= mid {
                    bits |= 1;
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
        }
        Ok(Geohash { bits, len })
    }

    /// Construct from raw packed bits. `bits` must only use the low
    /// `5 * len` bits.
    pub fn from_bits(bits: u64, len: u8) -> Result<Self, GeohashError> {
        if len == 0 || len > MAX_GEOHASH_LEN {
            return Err(GeohashError::BadLength(len as usize));
        }
        let used = 5 * len as u32;
        if used < 64 && (bits >> used) != 0 {
            return Err(GeohashError::BadCoordinate);
        }
        Ok(Geohash { bits, len })
    }

    /// Raw packed digits (right-aligned).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Geohash length, i.e. spatial resolution (1..=12).
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Never true — geohashes have at least one character — but provided for
    /// clippy's `len_without_is_empty` and API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decode to the bounding box this geohash identifies.
    pub fn bbox(&self) -> BBox {
        let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
        let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
        let total_bits = self.len as usize * 5;
        for i in 0..total_bits {
            let bit = (self.bits >> (total_bits - 1 - i)) & 1;
            if i % 2 == 0 {
                let mid = (lon_lo + lon_hi) / 2.0;
                if bit == 1 {
                    lon_lo = mid;
                } else {
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if bit == 1 {
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
        }
        BBox {
            min_lat: lat_lo,
            max_lat: lat_hi,
            min_lon: lon_lo,
            max_lon: lon_hi,
        }
    }

    /// Center point `(lat, lon)` of the box.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        self.bbox().center()
    }

    /// Width/height in degrees of a cell at geohash length `len`.
    ///
    /// Returns `(lat_extent, lon_extent)`. Even interleave steps split
    /// longitude, so odd lengths give boxes wider than tall.
    pub fn cell_extent(len: u8) -> (f64, f64) {
        let total_bits = len as u32 * 5;
        let lon_bits = total_bits.div_ceil(2);
        let lat_bits = total_bits / 2;
        (
            180.0 / (1u64 << lat_bits) as f64,
            360.0 / (1u64 << lon_bits) as f64,
        )
    }

    /// The parent cell: one step coarser spatial resolution (§IV-B "spatial
    /// parent"). `None` at length 1.
    #[inline]
    pub fn parent(&self) -> Option<Geohash> {
        (self.len > 1).then(|| Geohash {
            bits: self.bits >> 5,
            len: self.len - 1,
        })
    }

    /// Truncate to an ancestor of the given length. `prefix_len` must be
    /// `1..=self.len()`.
    pub fn prefix(&self, prefix_len: u8) -> Option<Geohash> {
        if prefix_len == 0 || prefix_len > self.len {
            return None;
        }
        Some(Geohash {
            bits: self.bits >> (5 * (self.len - prefix_len) as u32),
            len: prefix_len,
        })
    }

    /// The 32 children: one step finer spatial resolution. `None` when the
    /// hash is already at [`MAX_GEOHASH_LEN`].
    pub fn children(&self) -> Option<impl Iterator<Item = Geohash> + '_> {
        if self.len >= MAX_GEOHASH_LEN {
            return None;
        }
        let base = self.bits << 5;
        let len = self.len + 1;
        Some((0u64..32).map(move |d| Geohash {
            bits: base | d,
            len,
        }))
    }

    /// This cell's digit position within its parent (0..32); 5 low bits.
    #[inline]
    pub fn index_in_parent(&self) -> u8 {
        (self.bits & 31) as u8
    }

    /// Is `self` a spatial descendant of (or equal to) `ancestor`?
    pub fn is_within(&self, ancestor: &Geohash) -> bool {
        if ancestor.len > self.len {
            return false;
        }
        self.prefix(ancestor.len).as_ref() == Some(ancestor)
    }

    /// Bit counts of the two axes at this length: `(lat_bits, lon_bits)`.
    /// Even interleave positions carry longitude, so odd lengths give
    /// longitude one extra bit.
    #[inline]
    fn axis_bits(len: u8) -> (u32, u32) {
        let total = len as u32 * 5;
        (total / 2, total.div_ceil(2))
    }

    /// De-interleave the packed digits into per-axis grid indexes
    /// `(lat_idx, lon_idx)`: row/column of this box in the regular grid of
    /// its resolution, counted from the south-west corner.
    fn split_axes(&self) -> (u64, u64) {
        let total = self.len as u32 * 5;
        let (mut lat, mut lon) = (0u64, 0u64);
        // Bit 0 of the interleave (MSB of `bits`) is longitude.
        for i in 0..total {
            let bit = (self.bits >> (total - 1 - i)) & 1;
            if i % 2 == 0 {
                lon = (lon << 1) | bit;
            } else {
                lat = (lat << 1) | bit;
            }
        }
        (lat, lon)
    }

    /// Re-interleave per-axis grid indexes into a geohash of length `len`.
    fn from_axes(lat_idx: u64, lon_idx: u64, len: u8) -> Geohash {
        let total = len as u32 * 5;
        let (lat_bits, lon_bits) = Self::axis_bits(len);
        let mut bits = 0u64;
        let (mut lat_left, mut lon_left) = (lat_bits, lon_bits);
        for i in 0..total {
            bits <<= 1;
            if i % 2 == 0 {
                lon_left -= 1;
                bits |= (lon_idx >> lon_left) & 1;
            } else {
                lat_left -= 1;
                bits |= (lat_idx >> lat_left) & 1;
            }
        }
        Geohash { bits, len }
    }

    /// The grid neighbor `dy` rows north and `dx` columns east, or `None`
    /// beyond the poles. Longitude wraps across the antimeridian. Pure
    /// integer arithmetic — this sits on the freshness-dispersion hot path
    /// (§V-C2 touches ~10 neighbors per Cell per query).
    pub fn offset(&self, dy: i64, dx: i64) -> Option<Geohash> {
        let (lat_bits, lon_bits) = Self::axis_bits(self.len);
        let (lat, lon) = self.split_axes();
        let new_lat = lat as i64 + dy;
        if new_lat < 0 || new_lat >= (1i64 << lat_bits) {
            return None; // no neighbor beyond the poles
        }
        let lon_span = 1i64 << lon_bits;
        let new_lon = (lon as i64 + dx).rem_euclid(lon_span);
        Some(Self::from_axes(new_lat as u64, new_lon as u64, self.len))
    }

    /// The up-to-8 lateral neighbors: same-resolution boxes sharing an edge
    /// or corner (Fig. 1a of the paper). Fewer than 8 at the poles; wraps
    /// across the antimeridian.
    pub fn neighbors(&self) -> Vec<Geohash> {
        let mut out = Vec::with_capacity(8);
        for dy in [-1i64, 0, 1] {
            for dx in [-1i64, 0, 1] {
                if dy == 0 && dx == 0 {
                    continue;
                }
                if let Some(n) = self.offset(dy, dx) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// The geohash of the same length on the diametrically opposite side of
    /// the globe — the paper's *antipode* used to select maximally isolated
    /// helper nodes during Clique Handoff (§VII-B3).
    pub fn antipode(&self) -> Geohash {
        let (lat, lon) = self.center();
        let alat = (-lat).clamp(-90.0, 90.0);
        let mut alon = lon + 180.0;
        if alon >= 180.0 {
            alon -= 360.0;
        }
        Geohash::encode(alat, alon, self.len).expect("antipode of a valid center is valid")
    }

    /// A nearby same-length geohash at a random-ish offset around `self`,
    /// derived from `seed`. Used when an antipode helper declines and the
    /// hotspotted node retries "in a random direction around the antipode
    /// geohash" (§VII-B3).
    pub fn perturb(&self, seed: u64) -> Geohash {
        let b = self.bbox();
        let (clat, clon) = b.center();
        // Map seed to one of 8 directions and 1..=3 cell strides.
        let dir = (seed % 8) as usize;
        let stride = 1.0 + (seed / 8 % 3) as f64;
        const DIRS: [(f64, f64); 8] = [
            (1.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0),
            (-1.0, 1.0),
            (-1.0, 0.0),
            (-1.0, -1.0),
            (0.0, -1.0),
            (1.0, -1.0),
        ];
        let (dy, dx) = DIRS[dir];
        let lat = (clat + dy * stride * b.lat_extent()).clamp(-90.0, 90.0);
        let mut lon = clon + dx * stride * b.lon_extent();
        while lon < -180.0 {
            lon += 360.0;
        }
        while lon >= 180.0 {
            lon -= 360.0;
        }
        Geohash::encode(lat, lon, self.len).expect("perturbed coordinate is clamped valid")
    }

    /// Write the character form into a small stack buffer.
    fn to_chars(self) -> ([u8; MAX_GEOHASH_LEN as usize], usize) {
        let mut buf = [0u8; MAX_GEOHASH_LEN as usize];
        let n = self.len as usize;
        for (i, slot) in buf.iter_mut().enumerate().take(n) {
            let shift = 5 * (n - 1 - i) as u32;
            *slot = base32::encode_digit(((self.bits >> shift) & 31) as u8);
        }
        (buf, n)
    }
}

impl std::fmt::Display for Geohash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (buf, n) = self.to_chars();
        // Alphabet is ASCII, so this is always valid UTF-8.
        f.write_str(std::str::from_utf8(&buf[..n]).expect("geohash digits are ASCII"))
    }
}

// Debug delegates to Display — geohashes read better as their character form
// in test failures and logs.
impl std::fmt::Debug for Geohash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Geohash({self})")
    }
}

impl std::str::FromStr for Geohash {
    type Err = GeohashError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n = s.len();
        if n == 0 || n > MAX_GEOHASH_LEN as usize {
            return Err(GeohashError::BadLength(n));
        }
        let mut bits: u64 = 0;
        for ch in s.bytes() {
            let d = base32::decode_digit(ch).ok_or(GeohashError::BadCharacter(ch as char))?;
            bits = (bits << 5) | d as u64;
        }
        Ok(Geohash { bits, len: n as u8 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn known_encodings_match_reference() {
        // Reference values from geohash.org.
        let gh = Geohash::encode(37.7749, -122.4194, 6).unwrap(); // San Francisco
        assert_eq!(gh.to_string(), "9q8yyk");
        let gh = Geohash::encode(51.5074, -0.1278, 5).unwrap(); // London
        assert_eq!(gh.to_string(), "gcpvj");
        let gh = Geohash::encode(-33.8688, 151.2093, 7).unwrap(); // Sydney
        assert_eq!(gh.to_string(), "r3gx2f7");
    }

    #[test]
    fn roundtrip_string() {
        for s in ["9q8y7", "gcpvj", "s", "zzzzzzzzzzzz", "0000", "9Q8Y7"] {
            let gh = Geohash::from_str(s).unwrap();
            assert_eq!(gh.to_string(), s.to_ascii_lowercase());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Geohash::from_str("").is_err());
        assert!(Geohash::from_str("abc").is_err()); // 'a' invalid
        assert!(Geohash::from_str("9q8y7gggggggg").is_err()); // 13 chars
    }

    #[test]
    fn bbox_contains_encoded_point() {
        let (lat, lon) = (40.018, -105.274); // Boulder, CO
        for len in 1..=9u8 {
            let gh = Geohash::encode(lat, lon, len).unwrap();
            let b = gh.bbox();
            assert!(b.contains(lat, lon), "len {len}: {b} missing point");
        }
    }

    #[test]
    fn parent_child_nesting() {
        let gh = Geohash::from_str("9q8y7").unwrap();
        let parent = gh.parent().unwrap();
        assert_eq!(parent.to_string(), "9q8y");
        assert!(parent.bbox().encloses(&gh.bbox()));
        let children: Vec<_> = gh.children().unwrap().collect();
        assert_eq!(children.len(), 32);
        for c in &children {
            assert_eq!(c.parent().unwrap(), gh);
            assert!(gh.bbox().encloses(&c.bbox()));
            assert!(c.is_within(&gh));
        }
        // Children tile the parent exactly.
        let total: f64 = children.iter().map(|c| c.bbox().area_deg2()).sum();
        assert!((total - gh.bbox().area_deg2()).abs() < 1e-9);
    }

    #[test]
    fn paper_example_neighbors() {
        // Fig. 1a: the 8 spatial neighbors of 9q8y7.
        let gh = Geohash::from_str("9q8y7").unwrap();
        let mut names: Vec<String> = gh.neighbors().iter().map(|g| g.to_string()).collect();
        names.sort();
        let mut expected = vec![
            "9q8yd", "9q8ye", "9q8ys", "9q8yk", "9q8yh", "9q8y5", "9q8y4", "9q8y6",
        ];
        expected.sort_unstable();
        assert_eq!(names, expected);
    }

    #[test]
    fn paper_example_parent() {
        // §IV-B: "the spatial parent of Geohash region 9q8y7 is 9q8y".
        let gh = Geohash::from_str("9q8y7").unwrap();
        assert_eq!(gh.parent().unwrap().to_string(), "9q8y");
    }

    #[test]
    fn neighbors_at_pole_are_fewer() {
        // A cell touching the north pole has no northern neighbors.
        let gh = Geohash::encode(89.9, 0.0, 3).unwrap();
        let ns = gh.neighbors();
        assert!(
            ns.len() < 8,
            "expected < 8 neighbors at pole, got {}",
            ns.len()
        );
        for n in &ns {
            assert_eq!(n.len(), 3);
        }
    }

    #[test]
    fn neighbors_wrap_antimeridian() {
        let gh = Geohash::encode(0.0, 179.9, 4).unwrap();
        let ns = gh.neighbors();
        assert_eq!(ns.len(), 8);
        // Some neighbor must lie in the western hemisphere (wrapped).
        assert!(ns.iter().any(|n| n.center().1 < 0.0));
    }

    #[test]
    fn antipode_is_involutive_about_center() {
        let gh = Geohash::from_str("9q8y").unwrap();
        let anti = gh.antipode();
        let (lat, lon) = gh.center();
        let (alat, alon) = anti.center();
        assert!((lat + alat).abs() < 1.0, "lat {lat} vs {alat}");
        let dlon = (lon - alon).abs();
        assert!((dlon - 180.0).abs() < 1.0, "lon {lon} vs {alon}");
        // Antipode of antipode comes back to (approximately) the origin cell.
        assert_eq!(anti.antipode(), gh);
    }

    #[test]
    fn prefix_and_is_within() {
        let gh = Geohash::from_str("9q8y7k").unwrap();
        assert_eq!(gh.prefix(2).unwrap().to_string(), "9q");
        assert_eq!(gh.prefix(6).unwrap(), gh);
        assert!(gh.prefix(0).is_none());
        assert!(gh.prefix(7).is_none());
        assert!(gh.is_within(&Geohash::from_str("9q").unwrap()));
        assert!(!gh.is_within(&Geohash::from_str("9r").unwrap()));
        assert!(!Geohash::from_str("9q").unwrap().is_within(&gh));
    }

    #[test]
    fn cell_extent_matches_bbox() {
        for len in 1..=8u8 {
            let gh = Geohash::encode(10.0, 20.0, len).unwrap();
            let b = gh.bbox();
            let (h, w) = Geohash::cell_extent(len);
            assert!((b.lat_extent() - h).abs() < 1e-9, "len {len}");
            assert!((b.lon_extent() - w).abs() < 1e-9, "len {len}");
        }
    }

    #[test]
    fn ordering_groups_shared_prefixes() {
        let a = Geohash::from_str("9q8y0").unwrap();
        let b = Geohash::from_str("9q8yz").unwrap();
        let c = Geohash::from_str("9q900").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn from_bits_validates() {
        assert!(Geohash::from_bits(31, 1).is_ok());
        assert!(Geohash::from_bits(32, 1).is_err()); // uses bit 6
        assert!(Geohash::from_bits(0, 0).is_err());
        assert!(Geohash::from_bits(0, 13).is_err());
    }

    #[test]
    fn lon_180_wraps() {
        let gh = Geohash::encode(0.0, 180.0, 4).unwrap();
        let gh2 = Geohash::encode(0.0, -180.0, 4).unwrap();
        assert_eq!(gh, gh2);
    }

    #[test]
    fn perturb_same_length_and_nearby() {
        let gh = Geohash::from_str("9q8y").unwrap();
        for seed in 0..32u64 {
            let p = gh.perturb(seed);
            assert_eq!(p.len(), gh.len());
            assert_ne!(p, gh);
        }
    }
}
