//! # stash-geo
//!
//! Spatiotemporal indexing primitives for the STASH hierarchical aggregation
//! cache (Mitra et al., IEEE CLUSTER 2019).
//!
//! STASH identifies every cached aggregate ("Cell") by a *spatial label* — a
//! [Geohash](https://en.wikipedia.org/wiki/Geohash) bounding box — and a
//! *temporal label* — a calendar bin at one of four temporal resolutions
//! (year / month / day / hour). This crate provides those labels and all the
//! label arithmetic the paper's graph relies on:
//!
//! * **Hierarchical edges** (§IV-B): [`Geohash::parent`] / [`Geohash::children`]
//!   (a geohash of length *n* nests exactly 32 geohashes of length *n+1*) and
//!   [`TimeBin::parent`] / [`TimeBin::children`] (calendar nesting).
//! * **Lateral edges**: [`Geohash::neighbors`] (the 8 adjacent boxes at the
//!   same resolution) and [`TimeBin::neighbors`] (previous / next bin).
//! * **Query planning**: [`cover_bbox`] enumerates the geohashes of a
//!   given length intersecting a query rectangle, and
//!   [`TimeBin::cover_range`] enumerates the bins covering a time interval.
//! * **Hotspot handling** (§VII-B3): [`Geohash::antipode`] finds the geohash
//!   on the diametrically opposite side of the globe, used to pick *helper*
//!   nodes maximally isolated from a hotspotted region.
//!
//! Geohashes are stored bit-packed ([`Geohash`] is two machine words), so all
//! hierarchy operations are integer arithmetic — no string allocation on the
//! query evaluation path.

pub mod base32;
pub mod bbox;
pub mod cover;
pub mod geohash;
pub mod time;

pub use bbox::BBox;
pub use cover::{cover_bbox, cover_bbox_bounded, CoverError};
pub use geohash::Geohash;
pub use time::{TemporalRes, TimeBin, TimeRange};

/// Maximum geohash length supported by the packed representation.
///
/// 12 characters × 5 bits = 60 bits, which fits the `u64` payload. The STASH
/// paper evaluates spatial resolutions up to 7; 12 leaves generous headroom.
pub const MAX_GEOHASH_LEN: u8 = 12;

/// Number of children a geohash splits into when spatial resolution
/// increases by one (base-32 alphabet).
pub const GEOHASH_FANOUT: usize = 32;
