//! The geohash base-32 alphabet (`0-9`, `b-z` excluding `a`, `i`, `l`, `o`).
//!
//! Each geohash character carries 5 bits of interleaved latitude/longitude
//! precision. The alphabet and its ordering are fixed by the original
//! geohash.org specification referenced by the STASH paper [Niemeyer 1999].

/// The 32 geohash digits in value order: digit `i` encodes the 5-bit value `i`.
pub const ALPHABET: [u8; 32] = *b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Decode table: ASCII byte → 5-bit value, `0xFF` for invalid characters.
const DECODE: [u8; 256] = {
    let mut t = [0xFFu8; 256];
    let mut i = 0;
    while i < 32 {
        t[ALPHABET[i] as usize] = i as u8;
        // Geohashes are conventionally lowercase but accept uppercase input.
        let c = ALPHABET[i];
        if c.is_ascii_lowercase() {
            t[(c - b'a' + b'A') as usize] = i as u8;
        }
        i += 1;
    }
    t
};

/// Encode a 5-bit value (`0..32`) as its geohash character.
///
/// # Panics
/// Panics in debug builds if `value >= 32`.
#[inline]
pub fn encode_digit(value: u8) -> u8 {
    debug_assert!(value < 32, "geohash digit out of range: {value}");
    ALPHABET[(value & 31) as usize]
}

/// Decode a geohash character to its 5-bit value, or `None` if the byte is
/// not part of the alphabet (e.g. `a`, `i`, `l`, `o`).
#[inline]
pub fn decode_digit(ch: u8) -> Option<u8> {
    let v = DECODE[ch as usize];
    (v != 0xFF).then_some(v)
}

/// Returns `true` if `ch` is a valid geohash character (either case).
#[inline]
pub fn is_valid_digit(ch: u8) -> bool {
    DECODE[ch as usize] != 0xFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_has_32_unique_digits() {
        let mut seen = [false; 256];
        for &c in ALPHABET.iter() {
            assert!(!seen[c as usize], "duplicate digit {}", c as char);
            seen[c as usize] = true;
        }
    }

    #[test]
    fn alphabet_excludes_ambiguous_letters() {
        for c in [b'a', b'i', b'l', b'o'] {
            assert!(!ALPHABET.contains(&c), "{} must be excluded", c as char);
            assert_eq!(decode_digit(c), None);
        }
    }

    #[test]
    fn roundtrip_all_values() {
        for v in 0u8..32 {
            let c = encode_digit(v);
            assert_eq!(decode_digit(c), Some(v));
        }
    }

    #[test]
    fn uppercase_decodes_like_lowercase() {
        assert_eq!(decode_digit(b'B'), decode_digit(b'b'));
        assert_eq!(decode_digit(b'Z'), decode_digit(b'z'));
        // '9' has no case.
        assert_eq!(decode_digit(b'9'), Some(9));
    }

    #[test]
    fn invalid_bytes_rejected() {
        for c in [b' ', b'-', b'_', 0u8, 255u8, b'A' + 25] {
            if !is_valid_digit(c) {
                assert_eq!(decode_digit(c), None);
            }
        }
        assert_eq!(decode_digit(b'!'), None);
    }

    #[test]
    fn digit_order_matches_spec() {
        // Spot checks against the geohash.org ordering.
        assert_eq!(encode_digit(0), b'0');
        assert_eq!(encode_digit(9), b'9');
        assert_eq!(encode_digit(10), b'b');
        assert_eq!(encode_digit(17), b'j');
        assert_eq!(encode_digit(31), b'z');
    }
}
