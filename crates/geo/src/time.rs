//! The temporal half of STASH's spatiotemporal labels.
//!
//! STASH's temporal hierarchy mirrors its spatial one: a query names a
//! *temporal resolution* (year / month / day / hour — the paper's examples
//! use 'Month' and 'Day of the Month', §IV-B, §VIII-A) and every Cell carries
//! one calendar bin at that resolution. Hierarchical edges follow calendar
//! nesting (a month has 28–31 day children; a day has 24 hour children) and
//! lateral edges are the chronologically previous / next bin (Fig. 1b:
//! `2015-03` has temporal neighbors `2015-02` and `2015-04`).
//!
//! All arithmetic is proleptic-Gregorian civil calendar math on integer bin
//! indices (Howard Hinnant's `days_from_civil` algorithm) — no system clock,
//! no timezone: observation timestamps are UTC epoch seconds.

use serde::{Deserialize, Serialize};

/// Temporal resolution of a Cell, coarsest to finest.
///
/// The discriminant is the resolution *index* used by STASH level arithmetic
/// (coarser = smaller, like a shorter geohash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum TemporalRes {
    Year = 0,
    Month = 1,
    Day = 2,
    Hour = 3,
}

/// Number of temporal resolutions in the hierarchy.
pub const NUM_TEMPORAL_RES: u8 = 4;

impl TemporalRes {
    /// All resolutions, coarsest first.
    pub const ALL: [TemporalRes; 4] = [
        TemporalRes::Year,
        TemporalRes::Month,
        TemporalRes::Day,
        TemporalRes::Hour,
    ];

    /// Resolution index (0 = coarsest).
    #[inline]
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Build from an index.
    pub fn from_index(i: u8) -> Option<TemporalRes> {
        TemporalRes::ALL.get(i as usize).copied()
    }

    /// One step coarser, or `None` at `Year`.
    #[inline]
    pub fn coarser(self) -> Option<TemporalRes> {
        TemporalRes::from_index(self.index().checked_sub(1)?)
    }

    /// One step finer, or `None` at `Hour`.
    #[inline]
    pub fn finer(self) -> Option<TemporalRes> {
        TemporalRes::from_index(self.index() + 1)
    }
}

impl std::fmt::Display for TemporalRes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TemporalRes::Year => "year",
            TemporalRes::Month => "month",
            TemporalRes::Day => "day",
            TemporalRes::Hour => "hour",
        })
    }
}

// ---------------------------------------------------------------------------
// Civil calendar arithmetic (proleptic Gregorian, no leap seconds).
// ---------------------------------------------------------------------------

/// Days since 1970-01-01 for a civil date. Hinnant's algorithm; valid for
/// all i32 years.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m), "month {m}");
    debug_assert!((1..=31).contains(&d), "day {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date `(year, month, day)` for days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Days in the given month of the given year.
pub fn days_in_month(y: i64, m: u32) -> u32 {
    let (ny, nm) = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
    (days_from_civil(ny, nm, 1) - days_from_civil(y, m, 1)) as u32
}

/// Epoch seconds for a civil date-time (UTC).
pub fn epoch_seconds(y: i64, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> i64 {
    days_from_civil(y, m, d) * 86_400 + (hh as i64) * 3600 + (mm as i64) * 60 + ss as i64
}

// ---------------------------------------------------------------------------
// Time bins
// ---------------------------------------------------------------------------

/// A half-open UTC time interval `[start, end)` in epoch seconds — the
/// `Query_Time` of a STASH query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    pub start: i64,
    pub end: i64,
}

impl TimeRange {
    /// Construct; `start` must not exceed `end`.
    pub fn new(start: i64, end: i64) -> Option<TimeRange> {
        (start <= end).then_some(TimeRange { start, end })
    }

    /// A whole UTC day, like the paper's fixed `2015-02-02` query time.
    pub fn whole_day(y: i64, m: u32, d: u32) -> TimeRange {
        let s = epoch_seconds(y, m, d, 0, 0, 0);
        TimeRange {
            start: s,
            end: s + 86_400,
        }
    }

    #[inline]
    pub fn duration_secs(&self) -> i64 {
        self.end - self.start
    }

    #[inline]
    pub fn contains(&self, t: i64) -> bool {
        t >= self.start && t < self.end
    }

    #[inline]
    pub fn intersects(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    #[inline]
    pub fn encloses(&self, other: &TimeRange) -> bool {
        self.start <= other.start && self.end >= other.end
    }
}

/// A calendar bin at one temporal resolution: the temporal label of a Cell.
///
/// The index is resolution-specific: calendar year for `Year`,
/// `year*12 + month0` for `Month`, days-since-epoch for `Day`,
/// `days*24 + hour` for `Hour`. Indexes are consecutive integers, so lateral
/// neighbors are `idx ± 1` and range covers are integer intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimeBin {
    pub res: TemporalRes,
    pub idx: i64,
}

impl TimeBin {
    /// The bin at resolution `res` containing epoch second `t`.
    pub fn containing(res: TemporalRes, t: i64) -> TimeBin {
        let days = t.div_euclid(86_400);
        let idx = match res {
            TemporalRes::Year => civil_from_days(days).0,
            TemporalRes::Month => {
                let (y, m, _) = civil_from_days(days);
                y * 12 + (m as i64 - 1)
            }
            TemporalRes::Day => days,
            TemporalRes::Hour => days * 24 + t.rem_euclid(86_400) / 3600,
        };
        TimeBin { res, idx }
    }

    /// Start epoch second of this bin.
    pub fn start(&self) -> i64 {
        match self.res {
            TemporalRes::Year => days_from_civil(self.idx, 1, 1) * 86_400,
            TemporalRes::Month => {
                let y = self.idx.div_euclid(12);
                let m = self.idx.rem_euclid(12) as u32 + 1;
                days_from_civil(y, m, 1) * 86_400
            }
            TemporalRes::Day => self.idx * 86_400,
            TemporalRes::Hour => self.idx * 3600,
        }
    }

    /// One-past-the-end epoch second of this bin.
    pub fn end(&self) -> i64 {
        self.next().start()
    }

    /// The full `[start, end)` interval.
    pub fn range(&self) -> TimeRange {
        TimeRange {
            start: self.start(),
            end: self.end(),
        }
    }

    /// Chronologically next bin (lateral edge).
    #[inline]
    pub fn next(&self) -> TimeBin {
        TimeBin {
            res: self.res,
            idx: self.idx + 1,
        }
    }

    /// Chronologically previous bin (lateral edge).
    #[inline]
    pub fn prev(&self) -> TimeBin {
        TimeBin {
            res: self.res,
            idx: self.idx - 1,
        }
    }

    /// Both temporal neighbors, previous first (Fig. 1b).
    pub fn neighbors(&self) -> [TimeBin; 2] {
        [self.prev(), self.next()]
    }

    /// The enclosing bin one resolution coarser (temporal parent), or `None`
    /// at `Year`.
    pub fn parent(&self) -> Option<TimeBin> {
        let res = self.res.coarser()?;
        Some(TimeBin::containing(res, self.start()))
    }

    /// The enclosing bin at a coarser-or-equal resolution — the temporal
    /// half of upward derivation. Unlike chaining [`TimeBin::parent`], this
    /// avoids the start-second round trip where pure index arithmetic
    /// suffices (Hour→Day is a division, Month→Year likewise); only hops
    /// that change calendar unit go through civil math. `None` if `res` is
    /// *finer* than this bin.
    pub fn coarsened(&self, res: TemporalRes) -> Option<TimeBin> {
        if res > self.res {
            return None;
        }
        if res == self.res {
            return Some(*self);
        }
        let days = match self.res {
            TemporalRes::Hour => self.idx.div_euclid(24),
            TemporalRes::Day => self.idx,
            TemporalRes::Month => {
                // Month coarsens only to Year: a pure division.
                return Some(TimeBin {
                    res: TemporalRes::Year,
                    idx: self.idx.div_euclid(12),
                });
            }
            TemporalRes::Year => unreachable!("res < Year has no coarser target"),
        };
        let idx = match res {
            TemporalRes::Day => days,
            TemporalRes::Month => {
                let (y, m, _) = civil_from_days(days);
                y * 12 + (m as i64 - 1)
            }
            TemporalRes::Year => civil_from_days(days).0,
            TemporalRes::Hour => unreachable!("res < self.res"),
        };
        Some(TimeBin { res, idx })
    }

    /// The nested bins one resolution finer (temporal children), or `None`
    /// at `Hour`. A year has 12 children, a month 28–31, a day 24.
    pub fn children(&self) -> Option<Vec<TimeBin>> {
        let res = self.res.finer()?;
        Some(TimeBin::cover_range(res, self.range()))
    }

    /// How many children this bin has without materializing them.
    pub fn child_count(&self) -> Option<u32> {
        match self.res {
            TemporalRes::Year => Some(12),
            TemporalRes::Month => {
                let y = self.idx.div_euclid(12);
                let m = self.idx.rem_euclid(12) as u32 + 1;
                Some(days_in_month(y, m))
            }
            TemporalRes::Day => Some(24),
            TemporalRes::Hour => None,
        }
    }

    /// Is `self` temporally nested within (or equal to) `ancestor`?
    pub fn is_within(&self, ancestor: &TimeBin) -> bool {
        if ancestor.res > self.res {
            return false;
        }
        ancestor.range().encloses(&self.range())
    }

    /// All bins at `res` intersecting the half-open range. Empty for empty
    /// ranges.
    pub fn cover_range(res: TemporalRes, range: TimeRange) -> Vec<TimeBin> {
        if range.start >= range.end {
            return Vec::new();
        }
        let first = TimeBin::containing(res, range.start);
        let last = TimeBin::containing(res, range.end - 1);
        (first.idx..=last.idx)
            .map(|idx| TimeBin { res, idx })
            .collect()
    }

    /// Number of bins `cover_range` would return, without allocating.
    pub fn cover_range_len(res: TemporalRes, range: TimeRange) -> usize {
        if range.start >= range.end {
            return 0;
        }
        let first = TimeBin::containing(res, range.start);
        let last = TimeBin::containing(res, range.end - 1);
        (last.idx - first.idx + 1) as usize
    }
}

impl std::fmt::Display for TimeBin {
    /// Paper-style labels: `2015`, `2015-03`, `2015-03-09`, `2015-03-09T14`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.res {
            TemporalRes::Year => write!(f, "{}", self.idx),
            TemporalRes::Month => {
                let y = self.idx.div_euclid(12);
                let m = self.idx.rem_euclid(12) + 1;
                write!(f, "{y}-{m:02}")
            }
            TemporalRes::Day => {
                let (y, m, d) = civil_from_days(self.idx);
                write!(f, "{y}-{m:02}-{d:02}")
            }
            TemporalRes::Hour => {
                let (y, m, d) = civil_from_days(self.idx.div_euclid(24));
                let h = self.idx.rem_euclid(24);
                write!(f, "{y}-{m:02}-{d:02}T{h:02}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_epoch() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(days_from_civil(2015, 3, 1), 16_495);
        assert_eq!(civil_from_days(16_495), (2015, 3, 1));
        // Exhaustive roundtrip over several decades.
        for z in -20_000..40_000 {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2015, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29); // divisible by 400
        assert_eq!(days_in_month(1900, 2), 28); // divisible by 100 only
        assert_eq!(days_in_month(2015, 4), 30);
        assert_eq!(days_in_month(2015, 12), 31);
    }

    #[test]
    fn containing_and_bounds() {
        let t = epoch_seconds(2015, 3, 9, 14, 30, 0);
        let hour = TimeBin::containing(TemporalRes::Hour, t);
        assert_eq!(hour.to_string(), "2015-03-09T14");
        assert!(hour.range().contains(t));
        let day = TimeBin::containing(TemporalRes::Day, t);
        assert_eq!(day.to_string(), "2015-03-09");
        assert_eq!(day.range().duration_secs(), 86_400);
        let month = TimeBin::containing(TemporalRes::Month, t);
        assert_eq!(month.to_string(), "2015-03");
        let year = TimeBin::containing(TemporalRes::Year, t);
        assert_eq!(year.to_string(), "2015");
        assert_eq!(year.range().duration_secs(), 365 * 86_400);
    }

    #[test]
    fn paper_example_month_neighbors() {
        // Fig. 1b: 2015-03 has temporal neighbors 2015-02 and 2015-04.
        let bin = TimeBin::containing(TemporalRes::Month, epoch_seconds(2015, 3, 15, 0, 0, 0));
        let [prev, next] = bin.neighbors();
        assert_eq!(prev.to_string(), "2015-02");
        assert_eq!(next.to_string(), "2015-04");
    }

    #[test]
    fn month_neighbors_cross_year() {
        let jan = TimeBin::containing(TemporalRes::Month, epoch_seconds(2015, 1, 1, 0, 0, 0));
        let [dec, feb] = jan.neighbors();
        assert_eq!(dec.to_string(), "2014-12");
        assert_eq!(feb.to_string(), "2015-02");
    }

    #[test]
    fn parent_child_nesting() {
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2016, 2, 29, 0, 0, 0));
        let month = day.parent().unwrap();
        assert_eq!(month.to_string(), "2016-02");
        let kids = month.children().unwrap();
        assert_eq!(kids.len(), 29);
        assert!(kids.contains(&day));
        for k in &kids {
            assert_eq!(k.parent().unwrap(), month);
            assert!(k.is_within(&month));
        }
        assert_eq!(month.child_count(), Some(29));
        // Children tile the parent exactly.
        assert_eq!(kids.first().unwrap().start(), month.start());
        assert_eq!(kids.last().unwrap().end(), month.end());

        let year = month.parent().unwrap();
        assert_eq!(year.children().unwrap().len(), 12);
        assert_eq!(day.children().unwrap().len(), 24);
        let hour = TimeBin::containing(TemporalRes::Hour, 0);
        assert!(hour.children().is_none());
        assert!(year.parent().is_none());
    }

    #[test]
    fn coarsened_equals_containing_of_start() {
        // Spot-check each resolution pair against the reference definition
        // over a span that crosses month, year, and pre-epoch boundaries.
        for t in (-40 * 86_400..400 * 86_400).step_by(7 * 3600 + 11) {
            for from in TemporalRes::ALL {
                let bin = TimeBin::containing(from, t);
                for to in TemporalRes::ALL {
                    let got = bin.coarsened(to);
                    if to > from {
                        assert_eq!(got, None, "{bin:?} -> {to:?}");
                    } else {
                        assert_eq!(
                            got,
                            Some(TimeBin::containing(to, bin.start())),
                            "{bin:?} -> {to:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn coarsened_same_res_is_identity() {
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        assert_eq!(day.coarsened(TemporalRes::Day), Some(day));
        assert_eq!(day.coarsened(TemporalRes::Hour), None);
    }

    #[test]
    fn cover_range_matches_len() {
        let range = TimeRange::new(
            epoch_seconds(2015, 1, 30, 12, 0, 0),
            epoch_seconds(2015, 3, 2, 0, 0, 0),
        )
        .unwrap();
        for res in TemporalRes::ALL {
            let bins = TimeBin::cover_range(res, range);
            assert_eq!(bins.len(), TimeBin::cover_range_len(res, range));
            // Bins tile the range: first contains start, last contains end-1.
            assert!(bins.first().unwrap().range().contains(range.start));
            assert!(bins.last().unwrap().range().contains(range.end - 1));
            // Consecutive.
            for w in bins.windows(2) {
                assert_eq!(w[0].idx + 1, w[1].idx);
            }
        }
        assert_eq!(TimeBin::cover_range(TemporalRes::Month, range).len(), 3); // Jan, Feb, Mar
        assert_eq!(TimeBin::cover_range(TemporalRes::Year, range).len(), 1);
    }

    #[test]
    fn cover_empty_range() {
        let r = TimeRange::new(100, 100).unwrap();
        assert!(TimeBin::cover_range(TemporalRes::Day, r).is_empty());
        assert_eq!(TimeBin::cover_range_len(TemporalRes::Day, r), 0);
    }

    #[test]
    fn whole_day_is_one_day_bin() {
        let r = TimeRange::whole_day(2015, 2, 2);
        let bins = TimeBin::cover_range(TemporalRes::Day, r);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].to_string(), "2015-02-02");
        assert_eq!(TimeBin::cover_range(TemporalRes::Hour, r).len(), 24);
    }

    #[test]
    fn negative_epoch_times() {
        // Pre-1970 timestamps must bin correctly (div_euclid semantics).
        let t = epoch_seconds(1969, 12, 31, 23, 0, 0);
        let day = TimeBin::containing(TemporalRes::Day, t);
        assert_eq!(day.to_string(), "1969-12-31");
        let hour = TimeBin::containing(TemporalRes::Hour, t);
        assert_eq!(hour.to_string(), "1969-12-31T23");
        assert!(hour.range().contains(t));
    }

    #[test]
    fn resolution_ordering() {
        assert!(TemporalRes::Year < TemporalRes::Hour);
        assert_eq!(TemporalRes::Month.finer(), Some(TemporalRes::Day));
        assert_eq!(TemporalRes::Year.coarser(), None);
        assert_eq!(TemporalRes::Hour.finer(), None);
        for (i, r) in TemporalRes::ALL.iter().enumerate() {
            assert_eq!(TemporalRes::from_index(i as u8), Some(*r));
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    fn time_range_ops() {
        let a = TimeRange::new(0, 100).unwrap();
        let b = TimeRange::new(50, 150).unwrap();
        let c = TimeRange::new(100, 200).unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c)); // half-open: touching is disjoint
        assert!(a.encloses(&TimeRange::new(10, 90).unwrap()));
        assert!(!a.encloses(&b));
        assert!(TimeRange::new(5, 2).is_none());
    }
}
