//! Geohash covers of query rectangles.
//!
//! STASH's query planner turns a `Query_Polygon` into the set of same-length
//! geohash cells that intersect it (§IV-D): those are the spatial labels of
//! the Cells the query needs. Covers are computed by walking the regular
//! geohash grid row-by-row from the south-west corner — no recursion, no
//! allocation beyond the output vector.

use crate::bbox::BBox;
use crate::geohash::Geohash;
use crate::MAX_GEOHASH_LEN;

/// Error produced by [`cover_bbox_bounded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverError {
    /// The cover would exceed the caller's cell budget; contains the
    /// estimated cell count.
    TooManyCells(usize),
    /// Geohash length out of range.
    BadLength(u8),
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::TooManyCells(n) => write!(f, "cover would produce ~{n} cells"),
            CoverError::BadLength(l) => {
                write!(f, "geohash length {l} not in 1..={MAX_GEOHASH_LEN}")
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// Estimate (upper bound) of how many length-`len` cells intersect `bbox`.
pub fn cover_size_estimate(bbox: &BBox, len: u8) -> usize {
    let (h, w) = Geohash::cell_extent(len);
    let rows = (bbox.lat_extent() / h).floor() as usize + 2;
    let cols = (bbox.lon_extent() / w).floor() as usize + 2;
    rows.saturating_mul(cols)
}

/// All geohashes of length `len` whose boxes intersect `bbox`
/// (half-open edge semantics: a cell merely *touching* the query's north or
/// east edge is excluded, so adjacent queries don't share cells).
///
/// # Panics
/// Panics if `len` is 0 or exceeds [`MAX_GEOHASH_LEN`]. Use
/// [`cover_bbox_bounded`] for fallible, budgeted covers.
pub fn cover_bbox(bbox: &BBox, len: u8) -> Vec<Geohash> {
    cover_bbox_bounded(bbox, len, usize::MAX).expect("unbounded cover cannot overflow budget")
}

/// Like [`cover_bbox`] but fails fast when the cover would exceed
/// `max_cells` — the guard STASH uses so a careless globe-wide query at high
/// resolution cannot allocate unbounded memory.
pub fn cover_bbox_bounded(
    bbox: &BBox,
    len: u8,
    max_cells: usize,
) -> Result<Vec<Geohash>, CoverError> {
    if len == 0 || len > MAX_GEOHASH_LEN {
        return Err(CoverError::BadLength(len));
    }
    let estimate = cover_size_estimate(bbox, len);
    if estimate > max_cells.saturating_mul(2).saturating_add(4) {
        return Err(CoverError::TooManyCells(estimate));
    }
    let (h, w) = Geohash::cell_extent(len);
    // Anchor the walk on the center of the cell containing the SW corner.
    // Clamp the corner into the open globe so encode() succeeds.
    let sw_lat = bbox.min_lat.clamp(-90.0, 90.0 - h / 2.0);
    let sw_lon = bbox.min_lon.clamp(-180.0, 180.0 - w / 2.0);
    let anchor = Geohash::encode(sw_lat, sw_lon, len).expect("clamped corner is valid");
    let ab = anchor.bbox();
    let (start_lat, start_lon) = ab.center();

    let mut out = Vec::with_capacity(estimate.min(max_cells));
    // Walk cell centers: row r sits at start_lat + r*h, column c at
    // start_lon + c*w. A row/column intersects while its cell's low edge
    // (center - extent/2) is below the query's high edge.
    let mut lat = start_lat;
    while lat - h / 2.0 < bbox.max_lat && lat < 90.0 {
        let mut lon = start_lon;
        while lon - w / 2.0 < bbox.max_lon && lon < 180.0 {
            let gh = Geohash::encode(lat, lon, len).expect("grid point is valid");
            if gh.bbox().intersects(bbox) {
                if out.len() >= max_cells {
                    return Err(CoverError::TooManyCells(estimate));
                }
                out.push(gh);
            }
            lon += w;
        }
        lat += h;
    }
    Ok(out)
}

/// Number of cells [`cover_bbox`] returns, computed exactly but cheaply
/// (row/column counting without materializing the cover).
pub fn cover_len(bbox: &BBox, len: u8) -> usize {
    let (h, w) = Geohash::cell_extent(len);
    let count_axis = |lo: f64, hi: f64, origin: f64, step: f64, world_hi: f64| -> usize {
        if hi <= lo {
            return 0;
        }
        // Index of the cell containing lo, and of the cell containing the
        // last point strictly before hi.
        let first = ((lo - origin) / step).floor() as i64;
        let eps = step * 1e-9;
        let last = ((hi - eps).min(world_hi - eps) - origin) / step;
        let last = last.floor() as i64;
        (last - first + 1).max(0) as usize
    };
    let rows = count_axis(bbox.min_lat, bbox.max_lat, -90.0, h, 90.0);
    let cols = count_axis(bbox.min_lon, bbox.max_lon, -180.0, w, 180.0);
    rows * cols
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> BBox {
        BBox::new(min_lat, max_lat, min_lon, max_lon).unwrap()
    }

    #[test]
    fn single_cell_query_covers_one_cell() {
        // A tiny box strictly inside one geohash-4 cell.
        let gh = Geohash::encode(40.0, -105.0, 4).unwrap();
        let c = gh.bbox();
        let (clat, clon) = c.center();
        let tiny = bb(clat, clat + 1e-6, clon, clon + 1e-6);
        let cover = cover_bbox(&tiny, 4);
        assert_eq!(cover, vec![gh]);
    }

    #[test]
    fn cover_contains_all_intersecting_cells() {
        let q = bb(39.5, 41.5, -106.0, -104.0);
        for len in 2..=5u8 {
            let cover = cover_bbox(&q, len);
            assert!(!cover.is_empty());
            // Every covered cell intersects the query...
            for gh in &cover {
                assert!(
                    gh.bbox().intersects(&q),
                    "len {len}: {gh} doesn't intersect"
                );
            }
            // ...and no duplicates.
            let mut sorted = cover.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), cover.len(), "len {len}: duplicates");
            // Sampled interior points are all covered.
            for i in 0..10 {
                for j in 0..10 {
                    let lat = q.min_lat + (i as f64 + 0.5) / 10.0 * q.lat_extent();
                    let lon = q.min_lon + (j as f64 + 0.5) / 10.0 * q.lon_extent();
                    let cell = Geohash::encode(lat, lon, len).unwrap();
                    assert!(
                        cover.contains(&cell),
                        "len {len}: point ({lat},{lon}) uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn cover_len_matches_cover() {
        let boxes = [
            bb(39.5, 41.5, -106.0, -104.0),
            bb(0.0, 16.0, 0.0, 32.0),
            bb(-10.3, -9.7, 100.1, 101.9),
            bb(88.0, 90.0, -180.0, -170.0),
        ];
        for q in &boxes {
            for len in 1..=4u8 {
                assert_eq!(
                    cover_len(q, len),
                    cover_bbox(q, len).len(),
                    "mismatch for {q} len {len}"
                );
            }
        }
    }

    #[test]
    fn bounded_cover_rejects_huge_requests() {
        let q = BBox::GLOBE;
        match cover_bbox_bounded(&q, 6, 1000) {
            Err(CoverError::TooManyCells(n)) => assert!(n > 1000),
            other => panic!("expected TooManyCells, got {other:?}"),
        }
    }

    #[test]
    fn bounded_cover_rejects_bad_length() {
        let q = bb(0.0, 1.0, 0.0, 1.0);
        assert_eq!(cover_bbox_bounded(&q, 0, 10), Err(CoverError::BadLength(0)));
        assert_eq!(
            cover_bbox_bounded(&q, 13, 10),
            Err(CoverError::BadLength(13))
        );
    }

    #[test]
    fn half_open_east_north_edges() {
        // Query box exactly matching one cell must cover exactly that cell,
        // not its east/north neighbors.
        let gh = Geohash::encode(10.0, 10.0, 3).unwrap();
        let cover = cover_bbox(&gh.bbox(), 3);
        assert_eq!(cover, vec![gh]);
    }

    #[test]
    fn country_sized_cover_at_res_4() {
        // Paper country class: 16x32 degrees. At geohash length 4
        // (~0.176 x 0.352 deg) that is roughly 91*91 cells.
        let q = bb(24.0, 40.0, -112.0, -80.0);
        let cover = cover_bbox(&q, 4);
        let n = cover.len();
        assert!((8_000..10_000).contains(&n), "unexpected cover size {n}");
    }

    #[test]
    fn globe_cover_at_len_1_is_32() {
        let cover = cover_bbox(&BBox::GLOBE, 1);
        assert_eq!(cover.len(), 32);
    }

    #[test]
    fn pole_adjacent_cover() {
        let q = bb(85.0, 90.0, 0.0, 45.0);
        let cover = cover_bbox(&q, 2);
        assert!(!cover.is_empty());
        for gh in &cover {
            assert!(gh.bbox().intersects(&q));
        }
    }
}
