//! Geodetic bounding boxes (the `Query_Polygon` of the paper's queries).
//!
//! STASH queries carry a rectangular spatial extent in degrees. The paper's
//! evaluation defines its four query-size classes (country / state / county /
//! city) purely by the latitudinal and longitudinal extent of this rectangle
//! (§VIII-A), so [`BBox`] is the unit of workload generation as well as of
//! query planning.

use serde::{Deserialize, Serialize};

/// An axis-aligned latitude/longitude rectangle.
///
/// Invariants (enforced by [`BBox::new`]):
/// * `min_lat <= max_lat`, both within `[-90, 90]`
/// * `min_lon <= max_lon`, both within `[-180, 180]`
///
/// Boxes that would cross the antimeridian must be split by the caller;
/// the STASH paper's workloads (NAM North-American data) never produce them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    pub min_lat: f64,
    pub max_lat: f64,
    pub min_lon: f64,
    pub max_lon: f64,
}

/// Error constructing a [`BBox`] from invalid coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BBoxError {
    /// Latitude outside `[-90, 90]` or `min_lat > max_lat`.
    BadLatitude,
    /// Longitude outside `[-180, 180]` or `min_lon > max_lon`.
    BadLongitude,
    /// A coordinate was NaN.
    NotFinite,
}

impl std::fmt::Display for BBoxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BBoxError::BadLatitude => write!(f, "latitude out of range or inverted"),
            BBoxError::BadLongitude => write!(f, "longitude out of range or inverted"),
            BBoxError::NotFinite => write!(f, "coordinate is not finite"),
        }
    }
}

impl std::error::Error for BBoxError {}

impl BBox {
    /// The whole globe.
    pub const GLOBE: BBox = BBox {
        min_lat: -90.0,
        max_lat: 90.0,
        min_lon: -180.0,
        max_lon: 180.0,
    };

    /// Construct a validated bounding box.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Result<Self, BBoxError> {
        if ![min_lat, max_lat, min_lon, max_lon]
            .iter()
            .all(|v| v.is_finite())
        {
            return Err(BBoxError::NotFinite);
        }
        if !(-90.0..=90.0).contains(&min_lat)
            || !(-90.0..=90.0).contains(&max_lat)
            || min_lat > max_lat
        {
            return Err(BBoxError::BadLatitude);
        }
        if !(-180.0..=180.0).contains(&min_lon)
            || !(-180.0..=180.0).contains(&max_lon)
            || min_lon > max_lon
        {
            return Err(BBoxError::BadLongitude);
        }
        Ok(BBox {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        })
    }

    /// Construct from a south-west corner plus extents, clamping to the globe.
    pub fn from_corner_extent(lat: f64, lon: f64, lat_extent: f64, lon_extent: f64) -> Self {
        let min_lat = lat.clamp(-90.0, 90.0);
        let min_lon = lon.clamp(-180.0, 180.0);
        BBox {
            min_lat,
            max_lat: (min_lat + lat_extent.max(0.0)).clamp(-90.0, 90.0),
            min_lon,
            max_lon: (min_lon + lon_extent.max(0.0)).clamp(-180.0, 180.0),
        }
    }

    /// Latitudinal extent in degrees.
    #[inline]
    pub fn lat_extent(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitudinal extent in degrees.
    #[inline]
    pub fn lon_extent(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Area in square degrees (planar approximation, adequate for workload
    /// sizing — the paper classifies queries by degree extents, not km²).
    #[inline]
    pub fn area_deg2(&self) -> f64 {
        self.lat_extent() * self.lon_extent()
    }

    /// Geometric center `(lat, lon)`.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        (
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Point-in-box test. The southern and western edges are inclusive and
    /// the northern and eastern edges exclusive, so adjacent boxes tile the
    /// plane without double-counting observations — the same convention
    /// geohash decoding uses.
    #[inline]
    pub fn contains(&self, lat: f64, lon: f64) -> bool {
        lat >= self.min_lat && lat < self.max_lat && lon >= self.min_lon && lon < self.max_lon
    }

    /// Closed-edge variant used when a query rectangle should capture points
    /// sitting exactly on its boundary (e.g. the north pole row).
    #[inline]
    pub fn contains_closed(&self, lat: f64, lon: f64) -> bool {
        lat >= self.min_lat && lat <= self.max_lat && lon >= self.min_lon && lon <= self.max_lon
    }

    /// Do two boxes share any interior area?
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_lat < other.max_lat
            && other.min_lat < self.max_lat
            && self.min_lon < other.max_lon
            && other.min_lon < self.max_lon
    }

    /// Does `self` fully enclose `other`?
    #[inline]
    pub fn encloses(&self, other: &BBox) -> bool {
        self.min_lat <= other.min_lat
            && self.max_lat >= other.max_lat
            && self.min_lon <= other.min_lon
            && self.max_lon >= other.max_lon
    }

    /// Intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BBox {
            min_lat: self.min_lat.max(other.min_lat),
            max_lat: self.max_lat.min(other.max_lat),
            min_lon: self.min_lon.max(other.min_lon),
            max_lon: self.max_lon.min(other.max_lon),
        })
    }

    /// Fraction of `self`'s area covered by `other` (0.0 ..= 1.0).
    pub fn overlap_fraction(&self, other: &BBox) -> f64 {
        match self.intersection(other) {
            Some(i) if self.area_deg2() > 0.0 => i.area_deg2() / self.area_deg2(),
            _ => 0.0,
        }
    }

    /// Translate by `(dlat, dlon)` degrees, clamping to the globe.
    ///
    /// Clamping preserves the box *extent* where possible by shifting the
    /// whole box back inside the globe — this is what a map UI does when a
    /// user pans against the edge of the world.
    pub fn pan(&self, dlat: f64, dlon: f64) -> BBox {
        let (h, w) = (self.lat_extent(), self.lon_extent());
        let mut min_lat = self.min_lat + dlat;
        let mut min_lon = self.min_lon + dlon;
        min_lat = min_lat.clamp(-90.0, 90.0 - h);
        min_lon = min_lon.clamp(-180.0, 180.0 - w);
        BBox {
            min_lat,
            max_lat: min_lat + h,
            min_lon,
            max_lon: min_lon + w,
        }
    }

    /// Shrink (factor < 1) or grow (factor > 1) around the center, clamping
    /// to the globe. Used by the paper's *iterative dicing* workloads
    /// (§VIII-D1: −20 % spatial area per step).
    pub fn scale(&self, factor: f64) -> BBox {
        let (clat, clon) = self.center();
        let h = self.lat_extent() * factor / 2.0;
        let w = self.lon_extent() * factor / 2.0;
        BBox {
            min_lat: (clat - h).clamp(-90.0, 90.0),
            max_lat: (clat + h).clamp(-90.0, 90.0),
            min_lon: (clon - w).clamp(-180.0, 180.0),
            max_lon: (clon + w).clamp(-180.0, 180.0),
        }
    }
}

impl std::fmt::Display for BBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.4},{:.4}]x[{:.4},{:.4}]",
            self.min_lat, self.max_lat, self.min_lon, self.max_lon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_ranges() {
        assert!(BBox::new(0.0, 10.0, 0.0, 10.0).is_ok());
        assert_eq!(BBox::new(10.0, 0.0, 0.0, 10.0), Err(BBoxError::BadLatitude));
        assert_eq!(
            BBox::new(0.0, 10.0, 20.0, 10.0),
            Err(BBoxError::BadLongitude)
        );
        assert_eq!(BBox::new(0.0, 95.0, 0.0, 10.0), Err(BBoxError::BadLatitude));
        assert_eq!(
            BBox::new(0.0, 10.0, 0.0, 200.0),
            Err(BBoxError::BadLongitude)
        );
        assert_eq!(
            BBox::new(f64::NAN, 10.0, 0.0, 10.0),
            Err(BBoxError::NotFinite)
        );
    }

    #[test]
    fn contains_half_open() {
        let b = BBox::new(0.0, 10.0, 0.0, 10.0).unwrap();
        assert!(b.contains(0.0, 0.0));
        assert!(!b.contains(10.0, 5.0));
        assert!(!b.contains(5.0, 10.0));
        assert!(b.contains_closed(10.0, 10.0));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = BBox::new(0.0, 10.0, 0.0, 10.0).unwrap();
        let b = BBox::new(5.0, 15.0, 5.0, 15.0).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BBox::new(5.0, 10.0, 5.0, 10.0).unwrap());
        assert!((a.overlap_fraction(&b) - 0.25).abs() < 1e-12);
        let far = BBox::new(50.0, 60.0, 50.0, 60.0).unwrap();
        assert!(a.intersection(&far).is_none());
        assert_eq!(a.overlap_fraction(&far), 0.0);
    }

    #[test]
    fn encloses_is_reflexive_and_ordered() {
        let outer = BBox::new(0.0, 10.0, 0.0, 10.0).unwrap();
        let inner = BBox::new(2.0, 8.0, 2.0, 8.0).unwrap();
        assert!(outer.encloses(&outer));
        assert!(outer.encloses(&inner));
        assert!(!inner.encloses(&outer));
    }

    #[test]
    fn pan_preserves_extent_and_clamps() {
        let b = BBox::new(0.0, 4.0, 0.0, 8.0).unwrap();
        let p = b.pan(1.0, -2.0);
        assert!((p.lat_extent() - 4.0).abs() < 1e-12);
        assert!((p.lon_extent() - 8.0).abs() < 1e-12);
        assert!((p.min_lat - 1.0).abs() < 1e-12);
        // Panning far north keeps the box inside the globe with full extent.
        let top = b.pan(1000.0, 0.0);
        assert!((top.max_lat - 90.0).abs() < 1e-12);
        assert!((top.lat_extent() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scale_shrinks_around_center() {
        let b = BBox::new(0.0, 10.0, 0.0, 10.0).unwrap();
        let s = b.scale(0.5);
        assert_eq!(s.center(), b.center());
        assert!((s.area_deg2() - 25.0).abs() < 1e-9);
        // Iterative dicing: -20% AREA per step is scale(sqrt(0.8)) on extents.
        let diced = b.scale(0.8f64.sqrt());
        assert!((diced.area_deg2() / b.area_deg2() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn from_corner_extent_clamps() {
        let b = BBox::from_corner_extent(80.0, 170.0, 16.0, 32.0);
        assert!(b.max_lat <= 90.0 && b.max_lon <= 180.0);
        assert!(b.min_lat <= b.max_lat && b.min_lon <= b.max_lon);
    }
}
