//! Property-based tests for the spatiotemporal label arithmetic that the
//! whole STASH graph is built on. Invariants here are load-bearing: a wrong
//! parent/child or cover would silently corrupt cached aggregates.

use proptest::prelude::*;
use stash_geo::time::{civil_from_days, days_from_civil, days_in_month, epoch_seconds};
use stash_geo::{cover_bbox, BBox, Geohash, TemporalRes, TimeBin, TimeRange};

fn arb_latlon() -> impl Strategy<Value = (f64, f64)> {
    (-90.0f64..=90.0, -180.0f64..180.0)
}

proptest! {
    #[test]
    fn encode_decode_contains_point(((lat, lon), len) in (arb_latlon(), 1u8..=10)) {
        let gh = Geohash::encode(lat, lon, len).unwrap();
        let b = gh.bbox();
        prop_assert!(b.contains_closed(lat, lon), "{b} vs ({lat},{lon})");
    }

    #[test]
    fn string_roundtrip(((lat, lon), len) in (arb_latlon(), 1u8..=12)) {
        let gh = Geohash::encode(lat, lon, len).unwrap();
        let s = gh.to_string();
        prop_assert_eq!(s.parse::<Geohash>().unwrap(), gh);
        prop_assert_eq!(s.len(), len as usize);
    }

    #[test]
    fn parent_encloses_child(((lat, lon), len) in (arb_latlon(), 2u8..=10)) {
        let child = Geohash::encode(lat, lon, len).unwrap();
        let parent = child.parent().unwrap();
        prop_assert!(parent.bbox().encloses(&child.bbox()));
        prop_assert!(child.is_within(&parent));
        // Encoding the same point at the parent length gives the parent.
        prop_assert_eq!(Geohash::encode(lat, lon, len - 1).unwrap(), parent);
    }

    #[test]
    fn children_partition_parent(((lat, lon), len) in (arb_latlon(), 1u8..=6)) {
        let gh = Geohash::encode(lat, lon, len).unwrap();
        let children: Vec<Geohash> = gh.children().unwrap().collect();
        prop_assert_eq!(children.len(), 32);
        let area: f64 = children.iter().map(|c| c.bbox().area_deg2()).sum();
        prop_assert!((area - gh.bbox().area_deg2()).abs() < 1e-6);
        for c in &children {
            prop_assert_eq!(c.parent().unwrap(), gh);
        }
    }

    #[test]
    fn neighbors_are_adjacent_and_mutual(((lat, lon), len) in (arb_latlon(), 2u8..=7)) {
        let gh = Geohash::encode(lat.clamp(-85.0, 85.0), lon, len).unwrap();
        let b = gh.bbox();
        let ns = gh.neighbors();
        prop_assert!(ns.len() <= 8);
        for n in &ns {
            let nb = n.bbox();
            // Adjacent: closed boxes touch (allow antimeridian wrap).
            let lat_touch = nb.min_lat <= b.max_lat + 1e-9 && nb.max_lat >= b.min_lat - 1e-9;
            prop_assert!(lat_touch, "{gh} and {n} not lat-adjacent");
            // Mutual: gh must be a neighbor of each neighbor.
            prop_assert!(n.neighbors().contains(&gh), "{n} doesn't list {gh}");
        }
    }

    #[test]
    fn antipode_has_same_len_and_far_center(((lat, lon), len) in (arb_latlon(), 1u8..=8)) {
        let gh = Geohash::encode(lat, lon, len).unwrap();
        let anti = gh.antipode();
        prop_assert_eq!(anti.len(), gh.len());
        let (la, lo) = gh.center();
        let (aa, ao) = anti.center();
        // Great-circle separation of centers must be large: check the
        // chord in 3D to avoid longitude-wrap headaches.
        let to_xyz = |lat: f64, lon: f64| {
            let (latr, lonr) = (lat.to_radians(), lon.to_radians());
            (latr.cos() * lonr.cos(), latr.cos() * lonr.sin(), latr.sin())
        };
        let (x1, y1, z1) = to_xyz(la, lo);
        let (x2, y2, z2) = to_xyz(aa, ao);
        let dot = x1 * x2 + y1 * y2 + z1 * z2;
        prop_assert!(dot < 0.0, "antipode center not in opposite hemisphere (dot={dot})");
    }

    #[test]
    fn cover_includes_every_interior_point(
        (lat, lon) in arb_latlon(),
        dlat in 0.01f64..4.0,
        dlon in 0.01f64..4.0,
        len in 2u8..=4,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let q = BBox::from_corner_extent(lat.min(85.0), lon.min(175.0), dlat, dlon);
        let cover = cover_bbox(&q, len);
        // Any interior sample point's cell is in the cover.
        let plat = q.min_lat + fy * q.lat_extent() * 0.999;
        let plon = q.min_lon + fx * q.lon_extent() * 0.999;
        if q.contains(plat, plon) {
            let cell = Geohash::encode(plat, plon, len).unwrap();
            prop_assert!(cover.contains(&cell), "point cell {cell} missing from cover of {q}");
        }
        for gh in &cover {
            prop_assert!(gh.bbox().intersects(&q));
        }
    }

    #[test]
    fn civil_date_roundtrip(z in -1_000_000i64..1_000_000) {
        let (y, m, d) = civil_from_days(z);
        prop_assert!((1..=12).contains(&m));
        prop_assert!(d >= 1 && d <= days_in_month(y, m));
        prop_assert_eq!(days_from_civil(y, m, d), z);
    }

    #[test]
    fn time_bin_contains_its_timestamp(t in -2_000_000_000i64..4_000_000_000) {
        for res in TemporalRes::ALL {
            let bin = TimeBin::containing(res, t);
            prop_assert!(bin.range().contains(t), "{res}: {t}");
            // Start of bin maps back to the same bin.
            prop_assert_eq!(TimeBin::containing(res, bin.start()), bin);
            prop_assert_eq!(TimeBin::containing(res, bin.end()), bin.next());
        }
    }

    #[test]
    fn time_parents_nest(t in -2_000_000_000i64..4_000_000_000) {
        let hour = TimeBin::containing(TemporalRes::Hour, t);
        let day = hour.parent().unwrap();
        let month = day.parent().unwrap();
        let year = month.parent().unwrap();
        prop_assert!(hour.is_within(&day));
        prop_assert!(day.is_within(&month));
        prop_assert!(month.is_within(&year));
        prop_assert!(hour.is_within(&year));
        prop_assert_eq!(day.res, TemporalRes::Day);
        prop_assert_eq!(year.res, TemporalRes::Year);
    }

    #[test]
    fn time_children_tile_parent(t in 0i64..4_000_000_000) {
        for res in [TemporalRes::Year, TemporalRes::Month, TemporalRes::Day] {
            let bin = TimeBin::containing(res, t);
            let kids = bin.children().unwrap();
            prop_assert_eq!(kids.len() as u32, bin.child_count().unwrap());
            prop_assert_eq!(kids.first().unwrap().start(), bin.start());
            prop_assert_eq!(kids.last().unwrap().end(), bin.end());
            for w in kids.windows(2) {
                prop_assert_eq!(w[0].end(), w[1].start());
            }
        }
    }

    #[test]
    fn cover_range_tiles(start in -10_000_000i64..10_000_000, dur in 1i64..10_000_000) {
        let range = TimeRange::new(start, start + dur).unwrap();
        for res in TemporalRes::ALL {
            let bins = TimeBin::cover_range(res, range);
            prop_assert_eq!(bins.len(), TimeBin::cover_range_len(res, range));
            prop_assert!(bins.first().unwrap().range().contains(range.start));
            prop_assert!(bins.last().unwrap().range().contains(range.end - 1));
        }
    }

    #[test]
    fn bbox_pan_preserves_extent(
        (lat, lon) in arb_latlon(), dlat in -30.0f64..30.0, dlon in -30.0f64..30.0,
    ) {
        let b = BBox::from_corner_extent(lat.min(80.0), lon.min(170.0), 4.0, 8.0);
        let p = b.pan(dlat, dlon);
        prop_assert!((p.lat_extent() - b.lat_extent()).abs() < 1e-9);
        prop_assert!((p.lon_extent() - b.lon_extent()).abs() < 1e-9);
        prop_assert!(p.min_lat >= -90.0 && p.max_lat <= 90.0);
        prop_assert!(p.min_lon >= -180.0 && p.max_lon <= 180.0);
    }

    #[test]
    fn epoch_seconds_monotone_in_days(
        y in 1900i64..2100, m in 1u32..=12, d1 in 1u32..=28, d2 in 1u32..=28,
    ) {
        let a = epoch_seconds(y, m, d1, 0, 0, 0);
        let b = epoch_seconds(y, m, d2, 0, 0, 0);
        prop_assert_eq!(a < b, d1 < d2);
        prop_assert_eq!((b - a).abs() % 86_400, 0);
    }
}
