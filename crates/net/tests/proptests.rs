//! Property tests for the fabric: exactly-once delivery, per-pair FIFO
//! among equal-latency messages, and RPC-table consistency under random
//! interleavings.

use proptest::prelude::*;
use stash_net::{FaultPlan, NetConfig, NodeId, Router, RpcTable};
use std::time::Duration;

fn fast_config() -> NetConfig {
    NetConfig {
        base_latency: Duration::from_micros(100),
        bytes_per_sec: 1e12,
        loopback_is_free: false,
        ..NetConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every accepted message is delivered exactly once, to the right
    /// destination, with payload intact.
    #[test]
    fn exactly_once_delivery(sends in prop::collection::vec((0usize..4, 0usize..4), 1..150)) {
        let (router, endpoints) = Router::<(usize, usize)>::new(4, fast_config());
        let mut expected_per_dst = [0usize; 4];
        for (seq, &(src, dst)) in sends.iter().enumerate() {
            prop_assert!(router.send(NodeId(src), NodeId(dst), (seq, dst), 8));
            expected_per_dst[dst] += 1;
        }
        let mut got = std::collections::HashSet::new();
        for (i, ep) in endpoints.iter().enumerate() {
            for _ in 0..expected_per_dst[i] {
                let env = ep.inbox.recv_timeout(Duration::from_secs(5)).expect("delivery");
                prop_assert_eq!(env.dst, NodeId(i));
                prop_assert_eq!(env.payload.1, i, "payload routed to wrong node");
                prop_assert!(got.insert(env.payload.0), "duplicate delivery of {}", env.payload.0);
            }
            // Nothing extra arrives.
            prop_assert!(ep.inbox.try_recv().is_err(), "spurious message at node {i}");
        }
        prop_assert_eq!(got.len(), sends.len());
        router.shutdown();
    }

    /// Same-size messages between one pair keep their order (equal
    /// latencies tie-break FIFO).
    #[test]
    fn per_pair_fifo(n in 1usize..100) {
        let (router, mut endpoints) = Router::<usize>::new(2, fast_config());
        let ep = endpoints.remove(1);
        for i in 0..n {
            router.send(NodeId(0), NodeId(1), i, 16);
        }
        let mut got = Vec::with_capacity(n);
        for _ in 0..n {
            got.push(ep.inbox.recv_timeout(Duration::from_secs(5)).unwrap().payload);
        }
        let sorted: Vec<usize> = (0..n).collect();
        prop_assert_eq!(got, sorted);
        router.shutdown();
    }

    /// Message conservation: for any random schedule of sends, loopbacks,
    /// crashes, and restarts on a lossy wire, the ledger
    /// `sent == delivered + dropped + loopback + in-flight`
    /// balances once the wire quiesces (and in-flight is then zero).
    /// Refused sends stay outside the ledger by construction.
    #[test]
    fn ledger_conserves_messages(
        ops in prop::collection::vec((0u8..8, 0usize..4, 0usize..4), 1..120),
        seed in any::<u64>(),
        faulty in any::<bool>(),
    ) {
        let config = NetConfig {
            base_latency: Duration::from_micros(100),
            bytes_per_sec: 1e12,
            loopback_is_free: true,
            ..NetConfig::default()
        };
        let (router, mut endpoints) = Router::<usize>::new(4, config);
        if faulty {
            router.install_faults(
                FaultPlan::new(seed)
                    .drop_all(0.25)
                    .duplicate_all(0.25)
                    .delay_all(Duration::from_micros(500), 0.25),
            );
        }
        let mut slots: Vec<Option<_>> = endpoints.drain(..).map(Some).collect();
        let mut accepted = 0u64;
        let mut refused = 0u64;
        for &(kind, a, b) in &ops {
            match kind {
                // Crash (idempotent via is_crashed check) …
                0 => {
                    if !router.is_crashed(NodeId(a)) {
                        router.crash_node(NodeId(a));
                        slots[a] = None;
                    }
                }
                // … restart …
                1 => {
                    if router.is_crashed(NodeId(a)) {
                        slots[a] = Some(router.restart_node(NodeId(a)));
                    }
                }
                // … loopback send …
                2 => {
                    if router.send(NodeId(a), NodeId(a), 0, 8) {
                        accepted += 1;
                    } else {
                        refused += 1;
                    }
                }
                // … or a wire send.
                _ => {
                    if router.send(NodeId(a), NodeId(b), 0, 8) {
                        accepted += 1;
                    } else {
                        refused += 1;
                    }
                }
            }
        }
        prop_assert!(router.quiesce(Duration::from_secs(10)), "wire never drained");
        let s = router.stats();
        prop_assert_eq!(router.in_flight(), 0);
        // Fault-plan drops and partition losses report acceptance, so
        // `sent` can exceed `accepted` only through duplication.
        prop_assert!(s.messages_sent() >= accepted);
        prop_assert_eq!(s.messages_refused(), refused);
        prop_assert_eq!(
            s.messages_sent(),
            s.messages_delivered() + s.messages_dropped() + s.messages_loopback(),
            "sent {} != delivered {} + dropped {} + loopback {} (in flight {})",
            s.messages_sent(),
            s.messages_delivered(),
            s.messages_dropped(),
            s.messages_loopback(),
            router.in_flight()
        );
        router.shutdown();
    }

    /// Sharded-ledger conservation: with the totals striped across one
    /// lane per delivery shard, genuinely concurrent senders hitting
    /// every shard at once must still leave the merged read-out balanced:
    /// `sent == delivered + dropped + loopback` at quiescence.
    #[test]
    fn sharded_ledger_survives_concurrent_senders(
        shards in 1usize..5,
        per_thread in prop::collection::vec(
            prop::collection::vec((0usize..6, 0usize..6, any::<bool>()), 10..60),
            2..5,
        ),
        seed in any::<u64>(),
        faulty in any::<bool>(),
    ) {
        let config = NetConfig {
            base_latency: Duration::from_micros(100),
            bytes_per_sec: 1e12,
            loopback_is_free: true,
            delivery_shards: shards,
        };
        let (router, endpoints) = Router::<usize>::new(6, config);
        prop_assert_eq!(router.n_shards(), shards.min(6));
        if faulty {
            router.install_faults(
                FaultPlan::new(seed)
                    .drop_all(0.2)
                    .duplicate_all(0.2)
                    .delay_all(Duration::from_micros(300), 0.2),
            );
        }
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|sends| {
                let router = router.clone();
                std::thread::spawn(move || {
                    let mut accepted = 0u64;
                    for (src, dst, loopback) in sends {
                        let dst = if loopback { src } else { dst };
                        if router.send(NodeId(src), NodeId(dst), 0, 16) {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        prop_assert!(router.quiesce(Duration::from_secs(10)), "wire never drained");
        let s = router.stats();
        prop_assert!(s.messages_sent() >= accepted);
        prop_assert_eq!(s.messages_refused(), 0);
        prop_assert_eq!(
            s.messages_sent(),
            s.messages_delivered() + s.messages_dropped() + s.messages_loopback(),
            "sent {} != delivered {} + dropped {} + loopback {}",
            s.messages_sent(),
            s.messages_delivered(),
            s.messages_dropped(),
            s.messages_loopback()
        );
        prop_assert_eq!(s.ledger_in_flight(), 0);
        drop(endpoints);
        router.shutdown();
    }

    /// RPC table under random complete/cancel interleavings: each slot
    /// resolves at most once and the table never leaks entries.
    #[test]
    fn rpc_table_resolves_each_slot_once(actions in prop::collection::vec(any::<bool>(), 1..100)) {
        let table = RpcTable::<usize>::default();
        let mut live = Vec::new();
        for (i, complete) in actions.iter().enumerate() {
            let (id, rx) = table.register();
            if *complete {
                prop_assert!(table.complete(id, i));
                prop_assert!(!table.complete(id, i + 1_000), "double completion accepted");
                prop_assert_eq!(table.wait(id, &rx, Duration::from_secs(1)).unwrap(), i);
            } else {
                live.push((id, rx));
            }
        }
        prop_assert_eq!(table.in_flight(), live.len());
        for (id, _rx) in &live {
            table.cancel(*id);
        }
        prop_assert_eq!(table.in_flight(), 0);
    }
}
