//! # stash-net
//!
//! The simulated cluster fabric for the STASH reproduction.
//!
//! The paper evaluates on a 120-node cluster; this crate substitutes an
//! in-process message-passing fabric (DESIGN.md §2) with the properties the
//! experiments depend on:
//!
//! * **Real concurrency** — every simulated node is an OS thread draining a
//!   real channel, so queueing delay, hotspots, and head-of-line blocking
//!   *emerge* rather than being modeled.
//! * **Modeled wire time** — each message is held in a delay queue for
//!   `base_latency + bytes / bandwidth` before delivery, without occupying
//!   either endpoint (messages are genuinely in flight).
//! * **Observability** — per-node inbox depth (the paper's hotspot trigger,
//!   §VII-B1) and fabric-wide message/byte counters.
//!
//! The fabric is payload-generic: the cluster crate defines its own message
//! enum and the ElasticSearch baseline its own; both share this router.
//!
//! The router is also the **fault plane**: a seeded [`FaultPlan`] injects
//! deterministic per-link drops, duplicates, and delays; partitions and
//! node crash/restart are scripted imperatively (`Router::set_partition`,
//! `Router::crash_node`). Faults live at the wire so upper layers see them
//! the way real processes do — silence, duplicates, and dead peers.

pub mod fault;
pub mod router;
pub mod rpc;
pub mod stats;

pub use fault::{FaultDecision, FaultPlan, LinkFault};
pub use router::{Endpoint, Envelope, Inbox, NetConfig, NodeId, Router};
pub use rpc::RpcTable;
pub use stats::NetStats;
