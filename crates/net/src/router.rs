//! Sharded delay-queue message router: the simulated wire.
//!
//! [`Router::send`] stamps each message with a delivery deadline computed
//! from the [`NetConfig`] cost model and parks it in a priority queue. A
//! dedicated delivery thread hands messages to the destination node's
//! channel when their deadline passes. Neither sender nor receiver blocks
//! for wire time — latency is genuinely *in flight*, so a node's measured
//! service time reflects only its own work and queueing, as on real
//! hardware.
//!
//! Since PR 9 the fabric is **sharded**: delivery state is split into K
//! shards owned by destination-node hash (`dst % K`), mymq-style — each
//! shard owns its own delay heap, condvar, sequence counter, per-link fault
//! counters, and delivery thread. Senders to different destinations never
//! contend on a lock, and delivery work genuinely runs on multiple cores.
//! Because a link `(src, dst)` lives on exactly one shard (its destination's),
//! the per-link fault schedule is bit-for-bit the single-shard schedule.
//! Zero-delay messages (a free cost model with no fault delay) bypass the
//! heap entirely and deliver inline on the sender's thread.
//!
//! The fabric doubles as the fault plane: a seeded [`FaultPlan`] can drop,
//! duplicate, or delay messages per link; partitions sever node sets; and
//! whole nodes can be crashed and restarted. Faults are injected here — at
//! the wire — so the node and cluster layers above experience them exactly
//! as real processes do: as silence, duplication, and dead peers. When no
//! plan, partition, or crash is active, a relaxed "armed" flag lets the
//! send path skip every fault-plane lock.

use crossbeam::channel::{self, Receiver, RecvError, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::FaultPlan;
use crate::stats::NetStats;

/// Identity of a simulated cluster node (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Wire cost model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fixed per-message latency (propagation + protocol overhead).
    pub base_latency: Duration,
    /// Payload throughput in bytes per second. Non-positive or non-finite
    /// values disable the bandwidth term (latency is `base_latency` only).
    pub bytes_per_sec: f64,
    /// Messages a node sends to itself skip the wire when true (zero-hop
    /// local dispatch, like a same-process function call).
    pub loopback_is_free: bool,
    /// Delivery shards of the fabric — independent delay heaps + threads,
    /// owned by destination-node hash. `0` (the default) sizes from the
    /// host's available parallelism, clamped to `[1, 8]` and to the node
    /// count. `1` reproduces the old single-router-thread fabric exactly.
    pub delivery_shards: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Scaled-down datacenter wire: experiments compare systems under
            // the same fabric, so only ratios of disk-to-network matter.
            base_latency: Duration::from_micros(150),
            bytes_per_sec: 1.25e9, // ~10 Gb/s
            loopback_is_free: true,
            delivery_shards: 0,
        }
    }
}

impl NetConfig {
    /// Wire time for a message of `bytes` payload.
    pub fn latency(&self, bytes: usize) -> Duration {
        if !(self.bytes_per_sec.is_finite() && self.bytes_per_sec > 0.0) {
            return self.base_latency;
        }
        let secs = bytes as f64 / self.bytes_per_sec;
        if !secs.is_finite() {
            return self.base_latency;
        }
        self.base_latency + Duration::from_secs_f64(secs)
    }

    /// The shard count `delivery_shards` resolves to on this host for a
    /// fabric of `n_nodes`.
    pub fn resolved_shards(&self, n_nodes: usize) -> usize {
        let k = if self.delivery_shards > 0 {
            self.delivery_shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        };
        k.min(n_nodes).max(1)
    }
}

/// A routed message.
#[derive(Debug)]
pub struct Envelope<M> {
    pub src: NodeId,
    pub dst: NodeId,
    /// Time this message spent on the simulated wire, stamped by the
    /// delay loop at delivery (send-to-inbox, so it includes the cost
    /// model's latency, fault delays, and any delay-loop lateness).
    /// [`Duration::ZERO`] for loopback and locally re-dispatched messages.
    pub wire: Duration,
    pub payload: M,
}

struct Parked<M> {
    due: Instant,
    seq: u64,
    sent_at: Instant,
    env: Envelope<M>,
}

// Order by (due, seq) — BinaryHeap is a max-heap, so wrap in Reverse at the
// usage site. seq breaks ties FIFO. seq counters are per shard, which is
// enough: a destination's messages all park on its one owning shard.
impl<M> PartialEq for Parked<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Parked<M> {}
impl<M> PartialOrd for Parked<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Parked<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// One delivery shard: the delay heap, its wakeup signal, the FIFO tie-break
/// counter, and the per-link fault counters of every link it owns. All
/// state a message touches between `send` and delivery lives on exactly one
/// shard, so shards never take each other's locks.
struct Shard<M> {
    heap: Mutex<BinaryHeap<Reverse<Parked<M>>>>,
    wakeup: Condvar,
    seq: AtomicU64,
    /// Per-link message counters feeding the deterministic fault schedule.
    /// A link `(src, dst)` is owned by `dst`'s shard, so each counter has
    /// exactly one home and the schedule matches the unsharded fabric
    /// bit for bit.
    link_seq: Mutex<HashMap<(usize, usize), u64>>,
}

struct Shared<M> {
    shards: Vec<Shard<M>>,
    shutdown: AtomicBool,
}

/// Mutable fault-plane state, shared by all router clones.
struct FaultState {
    /// Fast-path flag: true iff a plan, partition, or crash is active.
    /// Relaxed — it only gates *optional* fault bookkeeping, and every
    /// mutation below rearms it before returning.
    armed: AtomicBool,
    /// Probabilistic link faults; `None` = clean wire.
    plan: RwLock<Option<FaultPlan>>,
    /// Node → partition-group map; nodes in different groups cannot
    /// communicate. `None` = fully connected.
    partition: RwLock<Option<Vec<usize>>>,
    /// Crash flags, indexed by node id.
    crashed: RwLock<Vec<bool>>,
}

impl FaultState {
    /// Recompute `armed` from the authoritative state. Called after every
    /// fault-plane mutation, while no mutation lock is held long-term —
    /// the flag is advisory for the send fast path, never authoritative.
    fn rearm(&self) {
        let armed = self.plan.read().is_some()
            || self.partition.read().is_some()
            || self.crashed.read().iter().any(|&c| c);
        self.armed.store(armed, Ordering::Relaxed);
    }
}

/// The fabric: one per simulated cluster.
///
/// Cheap to clone (all state behind `Arc`); clones share the same wire.
pub struct Router<M: Send + 'static> {
    config: NetConfig,
    n_nodes: usize,
    n_shards: usize,
    // RwLock so crash/restart can swap a node's inbox sender in place.
    inboxes: Arc<RwLock<Vec<Sender<Envelope<M>>>>>,
    /// Per-node queued-message counters: bumped at enqueue, decremented at
    /// dequeue by the [`Inbox`] wrapper. [`Router::inbox_len`] is a plain
    /// atomic load — no lock on the hotspot-detection path.
    depths: Arc<Vec<AtomicUsize>>,
    shared: Arc<Shared<M>>,
    faults: Arc<FaultState>,
    stats: Arc<NetStats>,
}

impl<M: Send + 'static> Clone for Router<M> {
    fn clone(&self) -> Self {
        Router {
            config: self.config.clone(),
            n_nodes: self.n_nodes,
            n_shards: self.n_shards,
            inboxes: Arc::clone(&self.inboxes),
            depths: Arc::clone(&self.depths),
            shared: Arc::clone(&self.shared),
            faults: Arc::clone(&self.faults),
            stats: Arc::clone(&self.stats),
        }
    }
}

/// The receiving end of a node's fabric inbox. Wraps the raw channel so
/// every dequeue maintains the router's per-node depth counter (the
/// paper's hotspot signal reads it lock-free).
pub struct Inbox<M> {
    rx: Receiver<Envelope<M>>,
    depths: Arc<Vec<AtomicUsize>>,
    node: usize,
}

impl<M> Inbox<M> {
    fn dec(&self) {
        self.depths[self.node].fetch_sub(1, Ordering::Relaxed);
    }

    /// Block until a message arrives (or every sender is gone).
    pub fn recv(&self) -> Result<Envelope<M>, RecvError> {
        let env = self.rx.recv()?;
        self.dec();
        Ok(env)
    }

    /// Block until a message arrives, the channel disconnects, or `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvTimeoutError> {
        let env = self.rx.recv_timeout(timeout)?;
        self.dec();
        Ok(env)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope<M>, TryRecvError> {
        let env = self.rx.try_recv()?;
        self.dec();
        Ok(env)
    }
}

impl<M> Drop for Inbox<M> {
    fn drop(&mut self) {
        // Messages still queued die with the inbox (node teardown): release
        // their depth so a restarted node starts from an honest zero.
        while self.rx.try_recv().is_ok() {
            self.dec();
        }
    }
}

/// One node's attachment to the fabric: its identity plus the receiving end
/// of its inbox.
pub struct Endpoint<M> {
    pub id: NodeId,
    pub inbox: Inbox<M>,
}

impl<M: Send + Clone + 'static> Router<M> {
    /// Build a fabric for `n_nodes` nodes. Returns the router plus one
    /// [`Endpoint`] per node; the delivery shard threads run until
    /// [`Router::shutdown`].
    pub fn new(n_nodes: usize, config: NetConfig) -> (Router<M>, Vec<Endpoint<M>>) {
        assert!(n_nodes > 0, "cluster must have at least one node");
        let n_shards = config.resolved_shards(n_nodes);
        let depths: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n_nodes).map(|_| AtomicUsize::new(0)).collect());
        let mut senders = Vec::with_capacity(n_nodes);
        let mut endpoints = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            endpoints.push(Endpoint {
                id: NodeId(i),
                inbox: Inbox {
                    rx,
                    depths: Arc::clone(&depths),
                    node: i,
                },
            });
        }
        let shards = (0..n_shards)
            .map(|_| Shard {
                heap: Mutex::new(BinaryHeap::new()),
                wakeup: Condvar::new(),
                seq: AtomicU64::new(0),
                link_seq: Mutex::new(HashMap::new()),
            })
            .collect();
        let shared = Arc::new(Shared {
            shards,
            shutdown: AtomicBool::new(false),
        });
        let router = Router {
            config,
            n_nodes,
            n_shards,
            inboxes: Arc::new(RwLock::new(senders)),
            depths,
            shared,
            faults: Arc::new(FaultState {
                armed: AtomicBool::new(false),
                plan: RwLock::new(None),
                partition: RwLock::new(None),
                crashed: RwLock::new(vec![false; n_nodes]),
            }),
            stats: Arc::new(NetStats::with_topology(n_nodes, n_shards)),
        };
        for shard_idx in 0..n_shards {
            let thread_router = router.clone();
            std::thread::Builder::new()
                .name(format!("stash-net-router-{shard_idx}"))
                .spawn(move || thread_router.run_delay_loop(shard_idx))
                .expect("spawn router shard thread");
        }
        (router, endpoints)
    }

    /// Number of nodes on the fabric.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of delivery shards this fabric resolved to.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Fabric-wide counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The cost model in force.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Queue depth of a node's inbox — the paper's hotspot detection signal
    /// ("the number of pending requests in its message queue", §VII-B1).
    /// A relaxed atomic load; safe on any hot path.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.depths[node.0].load(Ordering::Relaxed)
    }

    /// Which delivery shard owns messages destined for `dst`.
    #[inline]
    fn shard_of(&self, dst: usize) -> usize {
        dst % self.n_shards
    }

    /// Enqueue into `dst`'s inbox, maintaining the depth counter. The
    /// increment happens before the channel send so a receiver can never
    /// observe the message before the count; on a failed send (crashed or
    /// stopped endpoint) the increment is rolled back.
    fn push_inbox(&self, dst: usize, env: Envelope<M>) -> bool {
        self.depths[dst].fetch_add(1, Ordering::Relaxed);
        match self.inboxes.read()[dst].send(env) {
            Ok(()) => true,
            Err(_) => {
                self.depths[dst].fetch_sub(1, Ordering::Relaxed);
                false
            }
        }
    }

    // ---- Fault plane --------------------------------------------------------

    /// Is the fault plane active (plan, partition, or crash)? When false,
    /// [`Router::send`] takes no fault-plane lock at all.
    pub fn faults_armed(&self) -> bool {
        self.faults.armed.load(Ordering::Relaxed)
    }

    /// Install (or replace) the probabilistic fault plan. Per-link message
    /// counters reset, so the plan's fault schedule starts from its origin —
    /// installing the same plan twice yields the same schedule.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.faults.plan.write() = Some(plan);
        for shard in &self.shared.shards {
            shard.link_seq.lock().clear();
        }
        self.faults.rearm();
    }

    /// Remove the fault plan; the wire is clean again.
    pub fn clear_faults(&self) {
        *self.faults.plan.write() = None;
        for shard in &self.shared.shards {
            shard.link_seq.lock().clear();
        }
        self.faults.rearm();
    }

    /// Sever the fabric into groups: messages between nodes of different
    /// groups are silently lost (the sender still sees success, as with a
    /// real partition). Nodes absent from every group form one implicit
    /// extra group — still connected to each other, severed from all listed
    /// groups. Replaces any previous partition.
    pub fn set_partition(&self, groups: &[Vec<usize>]) {
        let mut map = vec![usize::MAX; self.n_nodes];
        for (gi, group) in groups.iter().enumerate() {
            for &node in group {
                assert!(node < self.n_nodes, "partition names unknown node {node}");
                map[node] = gi;
            }
        }
        *self.faults.partition.write() = Some(map);
        self.faults.rearm();
    }

    /// Remove the partition; all links work again.
    pub fn heal_partition(&self) {
        *self.faults.partition.write() = None;
        self.faults.rearm();
    }

    /// Crash a node: its inbox is torn off the fabric, so everything in
    /// flight to it (and everything sent later) is dropped, and the node's
    /// main loop sees its channel disconnect — the process is gone.
    /// Idempotent.
    pub fn crash_node(&self, node: NodeId) {
        assert!(node.0 < self.n_nodes, "unknown node {node}");
        {
            let mut crashed = self.faults.crashed.write();
            if crashed[node.0] {
                return;
            }
            crashed[node.0] = true;
            // Replace the inbox sender with one whose receiver is already
            // gone: parked deliveries fail (counted as drops), and dropping
            // the old sender disconnects the dead node's receive loop.
            let (dead_tx, _) = channel::unbounded();
            self.inboxes.write()[node.0] = dead_tx;
        }
        self.faults.rearm();
    }

    /// Restart a crashed node with a fresh, empty inbox. The caller wires
    /// the returned [`Endpoint`] to a new node process; nothing of the old
    /// process survives.
    pub fn restart_node(&self, node: NodeId) -> Endpoint<M> {
        assert!(node.0 < self.n_nodes, "unknown node {node}");
        let (tx, rx) = channel::unbounded();
        {
            let mut crashed = self.faults.crashed.write();
            assert!(crashed[node.0], "restart of live node {node}");
            self.inboxes.write()[node.0] = tx;
            crashed[node.0] = false;
        }
        self.faults.rearm();
        Endpoint {
            id: node,
            inbox: Inbox {
                rx,
                depths: Arc::clone(&self.depths),
                node: node.0,
            },
        }
    }

    /// Is this node currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults.armed.load(Ordering::Relaxed) && self.faults.crashed.read()[node.0]
    }

    /// Are these two nodes currently severed by a partition?
    fn severed(&self, src: usize, dst: usize) -> bool {
        match self.faults.partition.read().as_ref() {
            Some(map) => map[src] != map[dst],
            None => false,
        }
    }

    // ---- Send path ----------------------------------------------------------

    /// Send `payload` of approximate wire size `bytes` from `src` to `dst`.
    ///
    /// Returns `false` if the destination is crashed, the destination
    /// endpoint has been dropped (node stopped), or the fabric is shut down
    /// — senders treat that as a dead peer, not an error. Partition losses
    /// and fault-plan drops return `true`: real networks don't tell senders
    /// about in-flight loss, so those surface as timeouts upstream.
    pub fn send(&self, src: NodeId, dst: NodeId, payload: M, bytes: usize) -> bool {
        assert!(dst.0 < self.n_nodes, "unknown destination {dst}");
        if self.shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let shard_idx = self.shard_of(dst.0);
        // Clean-wire fast path: with no plan, partition, or crash armed,
        // nothing below can fire — skip every fault-plane lock.
        let armed = self.faults.armed.load(Ordering::Relaxed);
        if armed && {
            let crashed = self.faults.crashed.read();
            crashed[dst.0] || crashed[src.0]
        } {
            // Dead peer (or dead sender — a crashed process can't talk).
            // Fail fast: like a refused connection, not a timeout. The
            // message never enters the fabric, so it is a *refusal*, not a
            // send-then-drop — counting it as both sides of the ledger
            // (or neither) is what kept `sent != delivered + dropped`.
            self.stats.record_refuse(shard_idx, dst.0);
            return false;
        }
        self.stats.record_send(shard_idx, bytes);
        let env = Envelope {
            src,
            dst,
            wire: Duration::ZERO,
            payload,
        };
        if self.config.loopback_is_free && src == dst {
            // Local dispatch: no wire, no faults. Still a ledger event:
            // loopback completions get their own counter so
            // `sent == delivered + dropped + loopback + in-flight` holds.
            return if self.push_inbox(dst.0, env) {
                self.stats.record_loopback(shard_idx, dst.0);
                true
            } else {
                // Stopped endpoint (receiver gone without a crash).
                self.stats.record_drop(shard_idx, dst.0);
                false
            };
        }
        let mut extra_delay = Duration::ZERO;
        let mut duplicate = false;
        if armed {
            if self.severed(src.0, dst.0) {
                // Partitioned: the message is silently lost in flight.
                self.stats.record_drop(shard_idx, dst.0);
                return true;
            }
            if let Some(plan) = self.faults.plan.read().as_ref() {
                let k = {
                    let shard = &self.shared.shards[shard_idx];
                    let mut seqs = shard.link_seq.lock();
                    let slot = seqs.entry((src.0, dst.0)).or_insert(0);
                    let k = *slot;
                    *slot += 1;
                    k
                };
                let decision = plan.decide(src.0, dst.0, k);
                if decision.drop {
                    self.stats.record_drop(shard_idx, dst.0);
                    return true;
                }
                extra_delay = decision.extra_delay;
                duplicate = decision.duplicate;
            }
        }
        let sent_at = Instant::now();
        let delay = self.config.latency(bytes) + extra_delay;
        let copy = duplicate.then(|| Envelope {
            src: env.src,
            dst: env.dst,
            wire: Duration::ZERO,
            payload: env.payload.clone(),
        });
        if delay.is_zero() {
            // Zero-delay wire: nothing to park — deliver inline on the
            // sender's thread, skipping the heap and the shard wakeup.
            // Same-link sends stay ordered (they all run right here).
            self.deliver(
                shard_idx,
                Parked {
                    due: sent_at,
                    seq: 0,
                    sent_at,
                    env,
                },
            );
            if let Some(copy) = copy {
                self.stats.record_send(shard_idx, bytes);
                self.deliver(
                    shard_idx,
                    Parked {
                        due: sent_at,
                        seq: 0,
                        sent_at,
                        env: copy,
                    },
                );
            }
            return true;
        }
        let due = sent_at + delay;
        let shard = &self.shared.shards[shard_idx];
        let mut heap = shard.heap.lock();
        let seq = shard.seq.fetch_add(1, Ordering::Relaxed);
        heap.push(Reverse(Parked {
            due,
            seq,
            sent_at,
            env,
        }));
        if let Some(copy) = copy {
            // Duplicate: same deadline, later queue order — the copy lands
            // right behind the original.
            self.stats.record_send(shard_idx, bytes);
            let seq = shard.seq.fetch_add(1, Ordering::Relaxed);
            heap.push(Reverse(Parked {
                due,
                seq,
                sent_at,
                env: copy,
            }));
        }
        // Wake the shard's delay loop: the new head may be earlier than its
        // sleep.
        shard.wakeup.notify_one();
        true
    }

    /// Hand one parked message to its inbox, stamping observed wire time.
    fn deliver(&self, shard_idx: usize, mut parked: Parked<M>) {
        let dst = parked.env.dst.0;
        // Stamp the observed wire time — delivery timestamp minus send
        // timestamp — so receivers can account for it in query traces
        // without trusting the cost model.
        parked.env.wire = parked.sent_at.elapsed();
        // A crash between park and delivery swaps in a dead sender, so the
        // send fails either way; failure is a drop.
        if self.push_inbox(dst, parked.env) {
            self.stats.record_deliver(shard_idx, dst);
        } else {
            self.stats.record_drop(shard_idx, dst);
        }
    }

    /// Messages parked on the wire right now (accepted, not yet delivered
    /// or dropped), across all shards.
    pub fn in_flight(&self) -> usize {
        self.shared.shards.iter().map(|s| s.heap.lock().len()).sum()
    }

    /// Wait until nothing is parked on the wire (the ledger's in-flight
    /// term is zero), or until `timeout`. Returns `true` on quiescence.
    /// Note this only settles the *wire*; application-level handlers may
    /// still be about to send more.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.in_flight() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stop the delay loops. Messages still parked are dropped (and counted
    /// as drops), mirroring a fabric teardown. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            shard.wakeup.notify_all();
        }
    }

    fn run_delay_loop(self, shard_idx: usize) {
        let shard = &self.shared.shards[shard_idx];
        let mut heap_guard = shard.heap.lock();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                // Fabric teardown: everything still parked is lost. Record
                // the losses so the ledger still balances after shutdown.
                while let Some(Reverse(parked)) = heap_guard.pop() {
                    self.stats.record_drop(shard_idx, parked.env.dst.0);
                }
                return;
            }
            let now = Instant::now();
            // Deliver everything due.
            while let Some(Reverse(head)) = heap_guard.peek() {
                if head.due > now {
                    break;
                }
                let Reverse(parked) = heap_guard.pop().expect("peeked non-empty");
                self.deliver(shard_idx, parked);
            }
            // Sleep until the next deadline (or a new message arrives).
            match heap_guard.peek() {
                Some(Reverse(head)) => {
                    let wait = head.due.saturating_duration_since(Instant::now());
                    shard.wakeup.wait_for(&mut heap_guard, wait);
                }
                None => {
                    shard
                        .wakeup
                        .wait_for(&mut heap_guard, Duration::from_millis(50));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_to_destination() {
        let (router, mut eps) = Router::<String>::new(3, NetConfig::default());
        let ep2 = eps.remove(2);
        assert!(router.send(NodeId(0), NodeId(2), "hello".into(), 5));
        let env = ep2.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.payload, "hello");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.dst, NodeId(2));
        router.shutdown();
    }

    #[test]
    fn latency_is_applied() {
        let config = NetConfig {
            base_latency: Duration::from_millis(20),
            bytes_per_sec: 1e12,
            ..NetConfig::default()
        };
        let (router, mut eps) = Router::<u32>::new(2, config);
        let ep1 = eps.remove(1);
        let t0 = Instant::now();
        router.send(NodeId(0), NodeId(1), 7, 10);
        let env = ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(env.payload, 7);
        assert!(
            elapsed >= Duration::from_millis(18),
            "delivered too fast: {elapsed:?}"
        );
        router.shutdown();
    }

    #[test]
    fn loopback_skips_the_wire() {
        let config = NetConfig {
            base_latency: Duration::from_millis(250),
            ..NetConfig::default()
        };
        let (router, mut eps) = Router::<u32>::new(1, config);
        let ep = eps.remove(0);
        let t0 = Instant::now();
        router.send(NodeId(0), NodeId(0), 1, 10);
        ep.inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "loopback went over the wire"
        );
        router.shutdown();
    }

    #[test]
    fn loopback_is_not_a_wire_delivery() {
        let (router, eps) = Router::<u32>::new(1, NetConfig::default());
        router.send(NodeId(0), NodeId(0), 1, 10);
        assert_eq!(router.stats().messages_sent(), 1);
        assert_eq!(
            router.stats().messages_delivered(),
            0,
            "loopback skips record_deliver"
        );
        assert_eq!(router.stats().node_delivered(0), 0);
        // ... but it *is* a completed send: the loopback counter balances
        // the ledger (the old accounting left sent != delivered + dropped
        // forever on a quiesced, fault-free fabric).
        assert_eq!(router.stats().messages_loopback(), 1);
        assert_eq!(router.stats().ledger_in_flight(), 0);
        drop(eps);
        router.shutdown();
    }

    #[test]
    fn ledger_balances_after_quiesce_with_and_without_faults() {
        let check = |plan: Option<FaultPlan>| {
            let (router, eps) = Router::<u32>::new(3, fast_config());
            if let Some(plan) = plan {
                router.install_faults(plan);
            }
            for i in 0..60u32 {
                let src = NodeId((i as usize) % 3);
                let dst = NodeId((i as usize * 7 + 1) % 3);
                router.send(src, dst, i, 16);
            }
            assert!(router.quiesce(Duration::from_secs(5)), "wire never drained");
            let s = router.stats();
            assert_eq!(
                s.messages_sent(),
                s.messages_delivered() + s.messages_dropped() + s.messages_loopback(),
                "ledger out of balance: sent={} delivered={} dropped={} loopback={}",
                s.messages_sent(),
                s.messages_delivered(),
                s.messages_dropped(),
                s.messages_loopback()
            );
            drop(eps);
            router.shutdown();
        };
        check(None);
        check(Some(
            FaultPlan::new(0xD1CE)
                .drop_all(0.3)
                .duplicate_all(0.2)
                .delay_all(Duration::from_millis(1), 0.3),
        ));
    }

    #[test]
    fn delivered_envelopes_carry_wire_time() {
        let config = NetConfig {
            base_latency: Duration::from_millis(15),
            bytes_per_sec: 1e12,
            ..NetConfig::default()
        };
        let (router, mut eps) = Router::<u32>::new(2, config);
        let ep1 = eps.remove(1);
        router.send(NodeId(0), NodeId(1), 7, 8);
        let env = ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(
            env.wire >= Duration::from_millis(15),
            "wire stamp below modeled latency: {:?}",
            env.wire
        );
        // Loopback never rides the wire: stamp stays zero.
        let ep0 = eps.remove(0);
        router.send(NodeId(0), NodeId(0), 1, 8);
        let env = ep0.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.wire, Duration::ZERO);
        router.shutdown();
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let config = NetConfig {
            base_latency: Duration::from_millis(5),
            bytes_per_sec: 1e12,
            loopback_is_free: false,
            ..NetConfig::default()
        };
        let (router, mut eps) = Router::<u32>::new(2, config);
        let ep1 = eps.remove(1);
        for i in 0..100 {
            router.send(NodeId(0), NodeId(1), i, 0);
        }
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(
                ep1.inbox
                    .recv_timeout(Duration::from_secs(2))
                    .unwrap()
                    .payload,
            );
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "same-deadline messages reordered");
        router.shutdown();
    }

    #[test]
    fn bandwidth_term_grows_latency() {
        let config = NetConfig {
            base_latency: Duration::from_micros(10),
            bytes_per_sec: 1e6, // 1 MB/s: 100 KB takes 100 ms
            ..NetConfig::default()
        };
        assert!(config.latency(100_000) >= Duration::from_millis(99));
        assert!(config.latency(0) < Duration::from_millis(1));
    }

    #[test]
    fn zero_bandwidth_means_base_latency_only() {
        let base = Duration::from_micros(42);
        for bps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let config = NetConfig {
                base_latency: base,
                bytes_per_sec: bps,
                ..NetConfig::default()
            };
            assert_eq!(config.latency(1_000_000), base, "bytes_per_sec = {bps}");
        }
    }

    #[test]
    fn inbox_len_counts_pending() {
        let (router, eps) = Router::<u32>::new(
            2,
            NetConfig {
                base_latency: Duration::ZERO,
                bytes_per_sec: 1e12,
                ..NetConfig::default()
            },
        );
        // Self-sends bypass the delay loop, so they are queued immediately.
        for _ in 0..5 {
            router.send(NodeId(1), NodeId(1), 0, 0);
        }
        assert_eq!(router.inbox_len(NodeId(1)), 5);
        assert_eq!(router.inbox_len(NodeId(0)), 0);
        drop(eps);
        router.shutdown();
    }

    #[test]
    fn inbox_len_matches_queue_through_recv_and_teardown() {
        // Satellite regression: the atomic depth counter must equal the
        // actual queue length at quiescence, decrement per dequeue, and
        // return to zero when the endpoint is torn down.
        let (router, mut eps) = Router::<u32>::new(
            2,
            NetConfig {
                base_latency: Duration::from_micros(200),
                bytes_per_sec: 1e12,
                loopback_is_free: false,
                ..NetConfig::default()
            },
        );
        let ep1 = eps.remove(1);
        for i in 0..8u32 {
            assert!(router.send(NodeId(0), NodeId(1), i, 8));
        }
        assert!(router.quiesce(Duration::from_secs(5)), "wire never drained");
        assert_eq!(
            router.inbox_len(NodeId(1)),
            8,
            "counter vs queued at quiescence"
        );
        for left in (0..8usize).rev() {
            ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(router.inbox_len(NodeId(1)), left, "counter vs dequeues");
        }
        // Queue more, then drop the endpoint without draining: teardown
        // must release the counted depth.
        for i in 0..3u32 {
            assert!(router.send(NodeId(0), NodeId(1), i, 8));
        }
        assert!(router.quiesce(Duration::from_secs(5)));
        assert_eq!(router.inbox_len(NodeId(1)), 3);
        drop(ep1);
        assert_eq!(router.inbox_len(NodeId(1)), 0, "teardown releases depth");
        router.shutdown();
    }

    #[test]
    fn send_after_shutdown_fails() {
        let (router, _eps) = Router::<u32>::new(1, NetConfig::default());
        router.shutdown();
        assert!(!router.send(NodeId(0), NodeId(0), 1, 0) || router.inbox_len(NodeId(0)) <= 1);
        // Loopback may still succeed before the flag propagates; a second
        // non-loopback send must be refused.
        std::thread::sleep(Duration::from_millis(10));
        assert!(!router.send(NodeId(0), NodeId(0), 1, 0));
    }

    #[test]
    fn stats_count_sends_and_bytes() {
        let (router, eps) = Router::<u32>::new(2, NetConfig::default());
        router.send(NodeId(0), NodeId(1), 1, 100);
        router.send(NodeId(0), NodeId(1), 2, 200);
        assert_eq!(router.stats().messages_sent(), 2);
        assert_eq!(router.stats().bytes_sent(), 300);
        drop(eps);
        router.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_fabric_rejected() {
        let _ = Router::<u32>::new(0, NetConfig::default());
    }

    #[test]
    fn shard_count_resolves_and_clamps() {
        let explicit = NetConfig {
            delivery_shards: 4,
            ..NetConfig::default()
        };
        let (router, _eps) = Router::<u32>::new(8, explicit.clone());
        assert_eq!(router.n_shards(), 4);
        router.shutdown();
        // More shards than nodes is wasted threads: clamped to node count.
        let (router, _eps) = Router::<u32>::new(2, explicit);
        assert_eq!(router.n_shards(), 2);
        router.shutdown();
        // Auto (0) resolves to at least one shard.
        assert!(NetConfig::default().resolved_shards(8) >= 1);
        assert_eq!(NetConfig::default().resolved_shards(1), 1);
    }

    // ---- Fault plane --------------------------------------------------------

    fn fast_config() -> NetConfig {
        NetConfig {
            base_latency: Duration::from_micros(50),
            bytes_per_sec: 1e12,
            ..NetConfig::default()
        }
    }

    #[test]
    fn send_to_crashed_node_fails_fast() {
        let (router, mut eps) = Router::<u32>::new(2, fast_config());
        let _ep1 = eps.remove(1);
        router.crash_node(NodeId(1));
        assert!(router.is_crashed(NodeId(1)));
        assert!(
            !router.send(NodeId(0), NodeId(1), 7, 8),
            "crashed peer must refuse sends"
        );
        // A refusal is not a send-then-drop: it never entered the fabric.
        assert_eq!(router.stats().messages_refused(), 1);
        assert_eq!(router.stats().node_refused(1), 1);
        assert_eq!(router.stats().messages_sent(), 0);
        assert_eq!(router.stats().messages_dropped(), 0);
        router.shutdown();
    }

    #[test]
    fn crash_disconnects_old_endpoint_and_restart_wires_a_new_one() {
        let (router, mut eps) = Router::<u32>::new(2, fast_config());
        let old_ep = eps.remove(1);
        router.crash_node(NodeId(1));
        // The dead process's receive loop observes a disconnect.
        assert!(matches!(
            old_ep.inbox.recv_timeout(Duration::from_millis(500)),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected)
        ));
        let new_ep = router.restart_node(NodeId(1));
        assert!(!router.is_crashed(NodeId(1)));
        assert!(router.send(NodeId(0), NodeId(1), 9, 8));
        let env = new_ep.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.payload, 9);
        router.shutdown();
    }

    #[test]
    fn in_flight_messages_to_crashed_node_are_dropped() {
        let config = NetConfig {
            base_latency: Duration::from_millis(50),
            bytes_per_sec: 1e12,
            ..NetConfig::default()
        };
        let (router, mut eps) = Router::<u32>::new(2, config);
        let _ep1 = eps.remove(1);
        assert!(
            router.send(NodeId(0), NodeId(1), 7, 8),
            "send precedes the crash"
        );
        router.crash_node(NodeId(1)); // while the message is still parked
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(router.stats().messages_delivered(), 0);
        assert_eq!(router.stats().node_dropped(1), 1);
        router.shutdown();
    }

    #[test]
    fn partition_severs_and_heals() {
        let (router, mut eps) = Router::<u32>::new(3, fast_config());
        let ep2 = eps.remove(2);
        router.set_partition(&[vec![0, 1], vec![2]]);
        // Cross-partition: silent loss — send still reports success.
        assert!(router.send(NodeId(0), NodeId(2), 1, 8));
        assert!(matches!(
            ep2.inbox.recv_timeout(Duration::from_millis(100)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout)
        ));
        assert_eq!(router.stats().messages_dropped(), 1);
        router.heal_partition();
        assert!(router.send(NodeId(0), NodeId(2), 2, 8));
        let env = ep2.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.payload, 2);
        router.shutdown();
    }

    #[test]
    fn fault_plan_drops_are_silent_and_counted() {
        let (router, mut eps) = Router::<u32>::new(2, fast_config());
        let ep1 = eps.remove(1);
        router.install_faults(FaultPlan::new(1).drop_all(1.0));
        for i in 0..10 {
            assert!(router.send(NodeId(0), NodeId(1), i, 8), "drops are silent");
        }
        assert!(matches!(
            ep1.inbox.recv_timeout(Duration::from_millis(100)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout)
        ));
        assert_eq!(router.stats().messages_dropped(), 10);
        assert_eq!(router.stats().node_dropped(1), 10);
        router.clear_faults();
        assert!(router.send(NodeId(0), NodeId(1), 99, 8));
        assert_eq!(
            ep1.inbox
                .recv_timeout(Duration::from_secs(2))
                .unwrap()
                .payload,
            99
        );
        router.shutdown();
    }

    #[test]
    fn duplication_delivers_twice() {
        let (router, mut eps) = Router::<u32>::new(2, fast_config());
        let ep1 = eps.remove(1);
        router.install_faults(FaultPlan::new(2).duplicate_all(1.0));
        assert!(router.send(NodeId(0), NodeId(1), 7, 8));
        let a = ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        let b = ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!((a.payload, b.payload), (7, 7));
        router.shutdown();
    }

    #[test]
    fn inline_zero_delay_duplication_delivers_twice() {
        // Zero-delay sends bypass the heap; a duplicate fault must still
        // deliver both copies and keep the ledger balanced.
        let config = NetConfig {
            base_latency: Duration::ZERO,
            bytes_per_sec: 0.0, // bandwidth term off: latency stays zero
            loopback_is_free: false,
            ..NetConfig::default()
        };
        let (router, mut eps) = Router::<u32>::new(2, config);
        let ep1 = eps.remove(1);
        router.install_faults(FaultPlan::new(2).duplicate_all(1.0));
        assert!(router.send(NodeId(0), NodeId(1), 7, 8));
        let a = ep1.inbox.try_recv().expect("inline delivery is immediate");
        let b = ep1.inbox.try_recv().expect("inline duplicate too");
        assert_eq!((a.payload, b.payload), (7, 7));
        assert_eq!(router.stats().messages_sent(), 2);
        assert_eq!(router.stats().messages_delivered(), 2);
        assert_eq!(router.stats().ledger_in_flight(), 0);
        assert_eq!(router.in_flight(), 0, "nothing may park on a free wire");
        router.shutdown();
    }

    #[test]
    fn extra_delay_slows_the_link() {
        let (router, mut eps) = Router::<u32>::new(2, fast_config());
        let ep1 = eps.remove(1);
        router.install_faults(FaultPlan::new(3).delay_link(0, 1, Duration::from_millis(80), 1.0));
        let t0 = Instant::now();
        router.send(NodeId(0), NodeId(1), 7, 8);
        ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(70),
            "extra delay not applied"
        );
        router.shutdown();
    }

    #[test]
    fn reinstalling_a_plan_restarts_its_schedule() {
        let (router, mut eps) = Router::<u32>::new(2, fast_config());
        let ep1 = eps.remove(1);
        let plan = FaultPlan::new(0xBEEF).drop_all(0.5);
        let run = |router: &Router<u32>, ep: &Endpoint<u32>| {
            router.install_faults(plan.clone());
            let mut delivered = Vec::new();
            for i in 0..64u32 {
                router.send(NodeId(0), NodeId(1), i, 8);
            }
            while let Ok(env) = ep.inbox.recv_timeout(Duration::from_millis(200)) {
                delivered.push(env.payload);
            }
            delivered
        };
        let first = run(&router, &ep1);
        let second = run(&router, &ep1);
        assert_eq!(first, second, "same plan must replay the same schedule");
        assert!(
            !first.is_empty() && first.len() < 64,
            "p=0.5 should drop some, keep some"
        );
        router.shutdown();
    }

    #[test]
    fn fault_schedule_is_identical_across_shard_counts() {
        // The per-link counters live on the destination's one owning shard,
        // so the deterministic schedule cannot depend on K. Pin it: the
        // same plan over the same send sequence keeps/drops exactly the
        // same messages with 1 shard and with 4.
        let run = |shards: usize| {
            let config = NetConfig {
                base_latency: Duration::from_micros(50),
                bytes_per_sec: 1e12,
                loopback_is_free: false,
                delivery_shards: shards,
            };
            let (router, eps) = Router::<u64>::new(4, config);
            assert_eq!(router.n_shards(), shards);
            router.install_faults(
                FaultPlan::new(0xFAB)
                    .drop_all(0.3)
                    .duplicate_all(0.2)
                    .delay_all(Duration::from_micros(300), 0.3),
            );
            for i in 0..200u64 {
                let src = NodeId((i % 4) as usize);
                let dst = NodeId(((i * 13 + 1) % 4) as usize);
                router.send(src, dst, i, 16);
            }
            assert!(router.quiesce(Duration::from_secs(5)));
            let mut per_node: Vec<Vec<u64>> = vec![Vec::new(); 4];
            for ep in &eps {
                while let Ok(env) = ep.inbox.try_recv() {
                    per_node[env.dst.0].push(env.payload);
                }
            }
            // Delivery *order* may interleave differently under load;
            // the fault schedule (who survived, who duplicated) may not.
            for v in &mut per_node {
                v.sort_unstable();
            }
            router.shutdown();
            per_node
        };
        assert_eq!(
            run(1),
            run(4),
            "fault schedule diverged across shard counts"
        );
    }

    #[test]
    fn fault_fast_path_disarms_when_cleared() {
        // Satellite regression: the armed flag must track every fault-plane
        // mutation, so an armed-then-cleared plan restores the lock-free
        // fast path (and the wire still works).
        let (router, mut eps) = Router::<u32>::new(2, fast_config());
        let ep1 = eps.remove(1);
        assert!(!router.faults_armed(), "clean fabric boots disarmed");
        router.install_faults(FaultPlan::new(7).drop_all(0.0));
        assert!(router.faults_armed(), "a plan arms the fault plane");
        router.clear_faults();
        assert!(!router.faults_armed(), "clearing the plan disarms");
        router.set_partition(&[vec![0], vec![1]]);
        assert!(router.faults_armed(), "a partition arms");
        router.heal_partition();
        assert!(!router.faults_armed(), "healing disarms");
        router.crash_node(NodeId(1));
        assert!(router.faults_armed(), "a crash arms");
        let new_ep = router.restart_node(NodeId(1));
        assert!(!router.faults_armed(), "restart of the last crash disarms");
        // The restored fast path still delivers.
        assert!(router.send(NodeId(0), NodeId(1), 5, 8));
        assert_eq!(
            new_ep
                .inbox
                .recv_timeout(Duration::from_secs(2))
                .unwrap()
                .payload,
            5
        );
        drop(ep1);
        router.shutdown();
    }
}
