//! Delay-queue message router: the simulated wire.
//!
//! [`Router::send`] stamps each message with a delivery deadline computed
//! from the [`NetConfig`] cost model and parks it in a priority queue. A
//! dedicated router thread delivers messages to the destination node's
//! channel when their deadline passes. Neither sender nor receiver blocks
//! for wire time — latency is genuinely *in flight*, so a node's measured
//! service time reflects only its own work and queueing, as on real
//! hardware.

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::stats::NetStats;

/// Identity of a simulated cluster node (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Wire cost model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fixed per-message latency (propagation + protocol overhead).
    pub base_latency: Duration,
    /// Payload throughput in bytes per second.
    pub bytes_per_sec: f64,
    /// Messages a node sends to itself skip the wire when true (zero-hop
    /// local dispatch, like a same-process function call).
    pub loopback_is_free: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Scaled-down datacenter wire: experiments compare systems under
            // the same fabric, so only ratios of disk-to-network matter.
            base_latency: Duration::from_micros(150),
            bytes_per_sec: 1.25e9, // ~10 Gb/s
            loopback_is_free: true,
        }
    }
}

impl NetConfig {
    /// Wire time for a message of `bytes` payload.
    pub fn latency(&self, bytes: usize) -> Duration {
        self.base_latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// A routed message.
#[derive(Debug)]
pub struct Envelope<M> {
    pub src: NodeId,
    pub dst: NodeId,
    pub payload: M,
}

struct Parked<M> {
    due: Instant,
    seq: u64,
    env: Envelope<M>,
}

// Order by (due, seq) — BinaryHeap is a max-heap, so wrap in Reverse at the
// usage site. seq breaks ties FIFO.
impl<M> PartialEq for Parked<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Parked<M> {}
impl<M> PartialOrd for Parked<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Parked<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

struct Shared<M> {
    heap: Mutex<BinaryHeap<Reverse<Parked<M>>>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
}

/// The fabric: one per simulated cluster.
///
/// Cheap to clone (all state behind `Arc`); clones share the same wire.
pub struct Router<M: Send + 'static> {
    config: NetConfig,
    inboxes: Arc<Vec<Sender<Envelope<M>>>>,
    shared: Arc<Shared<M>>,
    stats: Arc<NetStats>,
    seq: Arc<std::sync::atomic::AtomicU64>,
}

impl<M: Send + 'static> Clone for Router<M> {
    fn clone(&self) -> Self {
        Router {
            config: self.config.clone(),
            inboxes: Arc::clone(&self.inboxes),
            shared: Arc::clone(&self.shared),
            stats: Arc::clone(&self.stats),
            seq: Arc::clone(&self.seq),
        }
    }
}

/// One node's attachment to the fabric: its identity plus the receiving end
/// of its inbox.
pub struct Endpoint<M> {
    pub id: NodeId,
    pub inbox: Receiver<Envelope<M>>,
}

impl<M: Send + 'static> Router<M> {
    /// Build a fabric for `n_nodes` nodes. Returns the router plus one
    /// [`Endpoint`] per node; the router thread runs until [`Router::shutdown`]
    /// or until the last router clone is dropped.
    pub fn new(n_nodes: usize, config: NetConfig) -> (Router<M>, Vec<Endpoint<M>>) {
        assert!(n_nodes > 0, "cluster must have at least one node");
        let mut senders = Vec::with_capacity(n_nodes);
        let mut endpoints = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            endpoints.push(Endpoint { id: NodeId(i), inbox: rx });
        }
        let shared = Arc::new(Shared {
            heap: Mutex::new(BinaryHeap::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let router = Router {
            config,
            inboxes: Arc::new(senders),
            shared: Arc::clone(&shared),
            stats: Arc::new(NetStats::default()),
            seq: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        };
        let thread_router = router.clone();
        std::thread::Builder::new()
            .name("stash-net-router".into())
            .spawn(move || thread_router.run_delay_loop())
            .expect("spawn router thread");
        (router, endpoints)
    }

    /// Number of nodes on the fabric.
    pub fn n_nodes(&self) -> usize {
        self.inboxes.len()
    }

    /// Fabric-wide counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The cost model in force.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Queue depth of a node's inbox — the paper's hotspot detection signal
    /// ("the number of pending requests in its message queue", §VII-B1).
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.inboxes[node.0].len()
    }

    /// Send `payload` of approximate wire size `bytes` from `src` to `dst`.
    ///
    /// Returns `false` if the destination endpoint has been dropped (node
    /// stopped) or the fabric is shut down — senders treat that as a dead
    /// peer, not an error.
    pub fn send(&self, src: NodeId, dst: NodeId, payload: M, bytes: usize) -> bool {
        assert!(dst.0 < self.inboxes.len(), "unknown destination {dst}");
        if self.shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        self.stats.record_send(bytes);
        let env = Envelope { src, dst, payload };
        if self.config.loopback_is_free && src == dst {
            return self.inboxes[dst.0].send(env).is_ok();
        }
        let due = Instant::now() + self.config.latency(bytes);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut heap = self.shared.heap.lock();
        heap.push(Reverse(Parked { due, seq, env }));
        // Wake the delay loop: the new head may be earlier than its sleep.
        self.shared.wakeup.notify_one();
        true
    }

    /// Stop the delay loop. Messages still parked are dropped, mirroring a
    /// fabric teardown. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wakeup.notify_all();
    }

    fn run_delay_loop(self) {
        let mut heap_guard = self.shared.heap.lock();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            // Deliver everything due.
            while let Some(Reverse(head)) = heap_guard.peek() {
                if head.due > now {
                    break;
                }
                let Reverse(parked) = heap_guard.pop().expect("peeked non-empty");
                // Delivery failure means the endpoint is gone; drop quietly.
                let _ = self.inboxes[parked.env.dst.0].send(parked.env);
                self.stats.record_deliver();
            }
            // Sleep until the next deadline (or a new message arrives).
            match heap_guard.peek() {
                Some(Reverse(head)) => {
                    let wait = head.due.saturating_duration_since(Instant::now());
                    self.shared.wakeup.wait_for(&mut heap_guard, wait);
                }
                None => {
                    self.shared.wakeup.wait_for(&mut heap_guard, Duration::from_millis(50));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_to_destination() {
        let (router, mut eps) = Router::<String>::new(3, NetConfig::default());
        let ep2 = eps.remove(2);
        assert!(router.send(NodeId(0), NodeId(2), "hello".into(), 5));
        let env = ep2.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(env.payload, "hello");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.dst, NodeId(2));
        router.shutdown();
    }

    #[test]
    fn latency_is_applied() {
        let config = NetConfig {
            base_latency: Duration::from_millis(20),
            bytes_per_sec: 1e12,
            loopback_is_free: true,
        };
        let (router, mut eps) = Router::<u32>::new(2, config);
        let ep1 = eps.remove(1);
        let t0 = Instant::now();
        router.send(NodeId(0), NodeId(1), 7, 10);
        let env = ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(env.payload, 7);
        assert!(elapsed >= Duration::from_millis(18), "delivered too fast: {elapsed:?}");
        router.shutdown();
    }

    #[test]
    fn loopback_skips_the_wire() {
        let config = NetConfig {
            base_latency: Duration::from_millis(250),
            ..NetConfig::default()
        };
        let (router, mut eps) = Router::<u32>::new(1, config);
        let ep = eps.remove(0);
        let t0 = Instant::now();
        router.send(NodeId(0), NodeId(0), 1, 10);
        ep.inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(100), "loopback went over the wire");
        router.shutdown();
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let config = NetConfig {
            base_latency: Duration::from_millis(5),
            bytes_per_sec: 1e12,
            loopback_is_free: false,
        };
        let (router, mut eps) = Router::<u32>::new(2, config);
        let ep1 = eps.remove(1);
        for i in 0..100 {
            router.send(NodeId(0), NodeId(1), i, 0);
        }
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(ep1.inbox.recv_timeout(Duration::from_secs(2)).unwrap().payload);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "same-deadline messages reordered");
        router.shutdown();
    }

    #[test]
    fn bandwidth_term_grows_latency() {
        let config = NetConfig {
            base_latency: Duration::from_micros(10),
            bytes_per_sec: 1e6, // 1 MB/s: 100 KB takes 100 ms
            loopback_is_free: true,
        };
        assert!(config.latency(100_000) >= Duration::from_millis(99));
        assert!(config.latency(0) < Duration::from_millis(1));
    }

    #[test]
    fn inbox_len_counts_pending() {
        let (router, eps) = Router::<u32>::new(2, NetConfig {
            base_latency: Duration::ZERO,
            bytes_per_sec: 1e12,
            loopback_is_free: true,
        });
        // Self-sends bypass the delay loop, so they are queued immediately.
        for _ in 0..5 {
            router.send(NodeId(1), NodeId(1), 0, 0);
        }
        assert_eq!(router.inbox_len(NodeId(1)), 5);
        assert_eq!(router.inbox_len(NodeId(0)), 0);
        drop(eps);
        router.shutdown();
    }

    #[test]
    fn send_after_shutdown_fails() {
        let (router, _eps) = Router::<u32>::new(1, NetConfig::default());
        router.shutdown();
        assert!(!router.send(NodeId(0), NodeId(0), 1, 0) || router.inbox_len(NodeId(0)) <= 1);
        // Loopback may still succeed before the flag propagates; a second
        // non-loopback send must be refused.
        std::thread::sleep(Duration::from_millis(10));
        assert!(!router.send(NodeId(0), NodeId(0), 1, 0));
    }

    #[test]
    fn stats_count_sends_and_bytes() {
        let (router, eps) = Router::<u32>::new(2, NetConfig::default());
        router.send(NodeId(0), NodeId(1), 1, 100);
        router.send(NodeId(0), NodeId(1), 2, 200);
        assert_eq!(router.stats().messages_sent(), 2);
        assert_eq!(router.stats().bytes_sent(), 300);
        drop(eps);
        router.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_fabric_rejected() {
        let _ = Router::<u32>::new(0, NetConfig::default());
    }
}
