//! Request/response correlation over the one-way fabric.
//!
//! The fabric only sends; callers that need an answer (a client waiting for
//! a query result, a hotspotted node waiting for a Distress acknowledgement)
//! register a pending slot here, ship the correlation id inside their
//! message, and block on the returned receiver. The responder completes the
//! slot by id.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A table of in-flight requests awaiting responses of type `R`.
#[derive(Debug)]
pub struct RpcTable<R> {
    next_id: AtomicU64,
    pending: Mutex<HashMap<u64, Sender<R>>>,
}

impl<R> Default for RpcTable<R> {
    fn default() -> Self {
        RpcTable {
            next_id: AtomicU64::new(1),
            pending: Mutex::new(HashMap::new()),
        }
    }
}

/// Why a wait ended without a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline; the slot has been reclaimed.
    Timeout,
    /// The responder dropped the slot without answering.
    Canceled,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::Canceled => write!(f, "rpc canceled"),
        }
    }
}

impl std::error::Error for RpcError {}

impl<R> RpcTable<R> {
    /// Allocate a correlation id and its response slot.
    pub fn register(&self) -> (u64, Receiver<R>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(id, tx);
        (id, rx)
    }

    /// Deliver the response for `id`. Returns `false` when the id is unknown
    /// (already completed, timed out, or never registered) — duplicate
    /// responses are tolerated, mirroring at-least-once delivery.
    pub fn complete(&self, id: u64, response: R) -> bool {
        match self.pending.lock().remove(&id) {
            Some(tx) => tx.send(response).is_ok(),
            None => false,
        }
    }

    /// Block on a response slot with a deadline. On timeout the slot is
    /// forgotten, so a late response is dropped rather than leaking.
    pub fn wait(&self, id: u64, rx: &Receiver<R>, timeout: Duration) -> Result<R, RpcError> {
        match rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout) => {
                self.pending.lock().remove(&id);
                Err(RpcError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Canceled),
        }
    }

    /// Number of requests still awaiting responses.
    pub fn in_flight(&self) -> usize {
        self.pending.lock().len()
    }

    /// Drop a pending slot (e.g. caller giving up early).
    pub fn cancel(&self, id: u64) {
        self.pending.lock().remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn complete_then_wait() {
        let table = RpcTable::<String>::default();
        let (id, rx) = table.register();
        assert_eq!(table.in_flight(), 1);
        assert!(table.complete(id, "ok".into()));
        let got = table.wait(id, &rx, Duration::from_secs(1)).unwrap();
        assert_eq!(got, "ok");
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn timeout_reclaims_slot() {
        let table = RpcTable::<u32>::default();
        let (id, rx) = table.register();
        let err = table.wait(id, &rx, Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        assert_eq!(table.in_flight(), 0);
        // A late response is ignored.
        assert!(!table.complete(id, 5));
    }

    #[test]
    fn unknown_and_duplicate_ids() {
        let table = RpcTable::<u32>::default();
        assert!(!table.complete(999, 1));
        let (id, rx) = table.register();
        assert!(table.complete(id, 1));
        assert!(!table.complete(id, 2), "duplicate response accepted");
        assert_eq!(table.wait(id, &rx, Duration::from_secs(1)).unwrap(), 1);
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let table = Arc::new(RpcTable::<u32>::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&table);
                std::thread::spawn(move || (0..100).map(|_| t.register().0).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
    }

    #[test]
    fn cancel_drops_slot() {
        let table = RpcTable::<u32>::default();
        let (id, _rx) = table.register();
        table.cancel(id);
        assert_eq!(table.in_flight(), 0);
        assert!(!table.complete(id, 1));
    }

    #[test]
    fn cross_thread_completion() {
        let table = Arc::new(RpcTable::<u64>::default());
        let (id, rx) = table.register();
        let t = Arc::clone(&table);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            t.complete(id, 42);
        });
        assert_eq!(table.wait(id, &rx, Duration::from_secs(2)).unwrap(), 42);
        h.join().unwrap();
    }
}
