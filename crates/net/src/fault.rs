//! Deterministic fault injection for the simulated wire.
//!
//! A [`FaultPlan`] is a list of per-link rules (drop / duplicate / extra
//! delay, each with a probability) plus a seed. Installed on a
//! [`Router`](crate::Router) it perturbs every non-loopback send. The
//! decision for the `k`-th message on link `(src, dst)` is drawn from an rng
//! seeded by `mix(plan_seed, src, dst, k)`, so the fault schedule of every
//! link is a pure function of the plan — independent of thread interleaving
//! and wall-clock time. Two runs that send the same message sequence down a
//! link experience byte-identical faults, which is what makes chaos tests
//! reproducible.
//!
//! Partitions and crashes are not probabilistic rules; they are imperative
//! state on the router itself (`set_partition`, `crash_node`) because the
//! chaos harness scripts them at specific points in a scenario.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One fault rule, scoped to a link or broadcast over all links.
///
/// `src`/`dst` of `None` match any node. All probabilities are in `[0, 1]`
/// and are evaluated independently; a message can be both delayed and
/// duplicated, but a dropped message is simply gone.
#[derive(Debug, Clone)]
pub struct LinkFault {
    /// Source filter; `None` matches every sender.
    pub src: Option<usize>,
    /// Destination filter; `None` matches every receiver.
    pub dst: Option<usize>,
    /// Probability the message vanishes in flight (silent loss — the sender
    /// still sees a successful send).
    pub drop_probability: f64,
    /// Probability the message is delivered twice.
    pub duplicate_probability: f64,
    /// Additional wire delay applied with `extra_delay_probability`.
    pub extra_delay: Duration,
    /// Probability `extra_delay` is added to the message's wire time.
    pub extra_delay_probability: f64,
}

impl LinkFault {
    fn new(src: Option<usize>, dst: Option<usize>) -> Self {
        LinkFault {
            src,
            dst,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            extra_delay: Duration::ZERO,
            extra_delay_probability: 0.0,
        }
    }

    /// Does this rule apply to a `(src, dst)` message?
    pub fn matches(&self, src: usize, dst: usize) -> bool {
        self.src.is_none_or(|s| s == src) && self.dst.is_none_or(|d| d == dst)
    }
}

/// What the fault plane decided for one message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Silently discard the message.
    pub drop: bool,
    /// Deliver a second copy (same deadline, later queue order).
    pub duplicate: bool,
    /// Extra wire delay on top of the cost model's latency.
    pub extra_delay: Duration,
}

/// A seeded schedule of link faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Root seed; all per-message decisions derive from it.
    pub seed: u64,
    /// Rules, evaluated in order; matching rules compound.
    pub links: Vec<LinkFault>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            links: Vec::new(),
        }
    }

    /// Drop every message on every link with probability `p`.
    pub fn drop_all(mut self, p: f64) -> Self {
        let mut rule = LinkFault::new(None, None);
        rule.drop_probability = p.clamp(0.0, 1.0);
        self.links.push(rule);
        self
    }

    /// Drop messages from `src` to `dst` with probability `p`.
    pub fn drop_link(mut self, src: usize, dst: usize, p: f64) -> Self {
        let mut rule = LinkFault::new(Some(src), Some(dst));
        rule.drop_probability = p.clamp(0.0, 1.0);
        self.links.push(rule);
        self
    }

    /// Duplicate every message on every link with probability `p`.
    pub fn duplicate_all(mut self, p: f64) -> Self {
        let mut rule = LinkFault::new(None, None);
        rule.duplicate_probability = p.clamp(0.0, 1.0);
        self.links.push(rule);
        self
    }

    /// Duplicate messages from `src` to `dst` with probability `p`.
    pub fn duplicate_link(mut self, src: usize, dst: usize, p: f64) -> Self {
        let mut rule = LinkFault::new(Some(src), Some(dst));
        rule.duplicate_probability = p.clamp(0.0, 1.0);
        self.links.push(rule);
        self
    }

    /// Add `extra` wire delay to every message with probability `p`.
    pub fn delay_all(mut self, extra: Duration, p: f64) -> Self {
        let mut rule = LinkFault::new(None, None);
        rule.extra_delay = extra;
        rule.extra_delay_probability = p.clamp(0.0, 1.0);
        self.links.push(rule);
        self
    }

    /// Add `extra` wire delay to `src → dst` messages with probability `p`.
    pub fn delay_link(mut self, src: usize, dst: usize, extra: Duration, p: f64) -> Self {
        let mut rule = LinkFault::new(Some(src), Some(dst));
        rule.extra_delay = extra;
        rule.extra_delay_probability = p.clamp(0.0, 1.0);
        self.links.push(rule);
        self
    }

    /// Decide the fate of the `k`-th message ever sent on link `(src, dst)`.
    ///
    /// Deterministic: depends only on the plan and `(src, dst, k)`. Rules
    /// are drawn in declaration order with a fixed draw order per rule
    /// (drop, delay, duplicate), so inserting a rule never perturbs the
    /// draws of rules before it on the same message.
    pub fn decide(&self, src: usize, dst: usize, k: u64) -> FaultDecision {
        let mut rng = StdRng::seed_from_u64(mix4(self.seed, src as u64, dst as u64, k));
        let mut decision = FaultDecision::default();
        for rule in &self.links {
            if !rule.matches(src, dst) {
                continue;
            }
            if rng.gen_bool(rule.drop_probability) {
                decision.drop = true;
            }
            if rng.gen_bool(rule.extra_delay_probability) {
                decision.extra_delay += rule.extra_delay;
            }
            if rng.gen_bool(rule.duplicate_probability) {
                decision.duplicate = true;
            }
        }
        decision
    }
}

/// splitmix64 finalizer — full-avalanche 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix4(seed: u64, src: u64, dst: u64, k: u64) -> u64 {
    mix64(mix64(mix64(mix64(seed) ^ src) ^ dst) ^ k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_plan_same_schedule() {
        let plan = FaultPlan::new(0xC4A0)
            .drop_all(0.1)
            .delay_link(0, 1, Duration::from_millis(5), 0.3)
            .duplicate_all(0.05);
        let replay = plan.clone();
        for k in 0..500 {
            for (s, d) in [(0, 1), (1, 0), (2, 3)] {
                assert_eq!(plan.decide(s, d, k), replay.decide(s, d, k));
            }
        }
    }

    #[test]
    fn links_have_independent_schedules() {
        let plan = FaultPlan::new(7).drop_all(0.5);
        let a: Vec<bool> = (0..64).map(|k| plan.decide(0, 1, k).drop).collect();
        let b: Vec<bool> = (0..64).map(|k| plan.decide(1, 0, k).drop).collect();
        assert_ne!(a, b, "reverse link should see a different schedule");
    }

    #[test]
    fn seed_changes_schedule() {
        let a = FaultPlan::new(1).drop_all(0.5);
        let b = FaultPlan::new(2).drop_all(0.5);
        let sa: Vec<bool> = (0..64).map(|k| a.decide(0, 1, k).drop).collect();
        let sb: Vec<bool> = (0..64).map(|k| b.decide(0, 1, k).drop).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn scoped_rule_only_hits_its_link() {
        let plan = FaultPlan::new(3).drop_link(0, 1, 1.0);
        for k in 0..32 {
            assert!(plan.decide(0, 1, k).drop);
            assert!(!plan.decide(1, 0, k).drop);
            assert!(!plan.decide(0, 2, k).drop);
        }
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let plan = FaultPlan::new(11).drop_all(0.2);
        let n = 5000;
        let dropped = (0..n).filter(|&k| plan.decide(4, 5, k).drop).count();
        let rate = dropped as f64 / n as f64;
        assert!((0.15..0.25).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn matching_rules_compound() {
        let plan = FaultPlan::new(9)
            .drop_link(0, 1, 1.0)
            .delay_all(Duration::from_millis(2), 1.0)
            .duplicate_link(0, 1, 1.0);
        let d = plan.decide(0, 1, 0);
        assert!(d.drop && d.duplicate);
        assert_eq!(d.extra_delay, Duration::from_millis(2));
        // Unrelated link only picks up the broadcast delay rule.
        let d2 = plan.decide(2, 3, 0);
        assert_eq!(
            d2,
            FaultDecision {
                drop: false,
                duplicate: false,
                extra_delay: Duration::from_millis(2)
            }
        );
    }
}
