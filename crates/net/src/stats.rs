//! Fabric-wide counters, shared lock-free across router clones.

use std::sync::atomic::{AtomicU64, Ordering};

/// Message and byte counters for a [`Router`](crate::Router).
///
/// Relaxed ordering everywhere: these are monitoring counters, not
/// synchronization. (Per the concurrency guide: counters that no control
/// flow depends on need no happens-before edges.)
#[derive(Debug, Default)]
pub struct NetStats {
    messages_sent: AtomicU64,
    messages_delivered: AtomicU64,
    bytes_sent: AtomicU64,
}

impl NetStats {
    pub(crate) fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_deliver(&self) {
        self.messages_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages accepted by [`Router::send`](crate::Router::send).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Messages that completed their wire delay and were handed to an inbox
    /// (loopback sends skip the wire and are not counted here).
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered.load(Ordering::Relaxed)
    }

    /// Total payload bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::default();
        s.record_send(10);
        s.record_send(20);
        s.record_deliver();
        assert_eq!(s.messages_sent(), 2);
        assert_eq!(s.bytes_sent(), 30);
        assert_eq!(s.messages_delivered(), 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = std::sync::Arc::new(NetStats::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.messages_sent(), 8000);
        assert_eq!(s.bytes_sent(), 8000);
    }
}
