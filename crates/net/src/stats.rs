//! Fabric-wide and per-node counters, shared lock-free across router clones.

use std::sync::atomic::{AtomicU64, Ordering};

/// One cache line of fabric-total counters. The totals are striped across
/// one lane per delivery shard so senders and shard threads touching
/// different shards never bounce a shared counter line between cores;
/// read-out sums the lanes.
#[derive(Debug, Default)]
#[repr(align(64))]
struct LaneTotals {
    messages_sent: AtomicU64,
    messages_delivered: AtomicU64,
    messages_dropped: AtomicU64,
    messages_loopback: AtomicU64,
    messages_refused: AtomicU64,
    bytes_sent: AtomicU64,
}

/// Message and byte counters for a [`Router`](crate::Router).
///
/// Relaxed ordering everywhere: these are monitoring counters, not
/// synchronization. (Per the concurrency guide: counters that no control
/// flow depends on need no happens-before edges.)
///
/// Fabric-wide totals are striped into shard-local lanes
/// ([`NetStats::with_topology`]); getters merge the lanes at read time.
/// Per-node slots are sized once at fabric construction and indexed by
/// node id; a default (node-less) stats block still tracks the totals.
#[derive(Debug)]
pub struct NetStats {
    /// Shard-local total stripes; always at least one lane.
    lanes: Vec<LaneTotals>,
    /// Per-destination delivered counts, indexed by node id.
    node_delivered: Vec<AtomicU64>,
    /// Per-destination dropped counts, indexed by node id.
    node_dropped: Vec<AtomicU64>,
    /// Per-destination refused counts, indexed by node id.
    node_refused: Vec<AtomicU64>,
}

impl Default for NetStats {
    fn default() -> Self {
        NetStats::with_topology(0, 1)
    }
}

impl NetStats {
    /// Stats block with per-node slots for a fabric of `n_nodes` and one
    /// total lane per delivery shard (`lanes` is clamped to ≥ 1).
    pub fn with_topology(n_nodes: usize, lanes: usize) -> Self {
        NetStats {
            lanes: (0..lanes.max(1)).map(|_| LaneTotals::default()).collect(),
            node_delivered: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            node_dropped: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            node_refused: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Stats block with per-node slots and a single total lane.
    pub fn with_nodes(n_nodes: usize) -> Self {
        NetStats::with_topology(n_nodes, 1)
    }

    fn lane(&self, lane: usize) -> &LaneTotals {
        // Callers pass a shard index; modulo keeps any index safe.
        &self.lanes[lane % self.lanes.len()]
    }

    pub(crate) fn record_send(&self, lane: usize, bytes: usize) {
        let l = self.lane(lane);
        l.messages_sent.fetch_add(1, Ordering::Relaxed);
        l.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_deliver(&self, lane: usize, dst: usize) {
        self.lane(lane)
            .messages_delivered
            .fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.node_delivered.get(dst) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_drop(&self, lane: usize, dst: usize) {
        self.lane(lane)
            .messages_dropped
            .fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.node_dropped.get(dst) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_loopback(&self, lane: usize, _dst: usize) {
        // Per-node slots stay wire-only; the total keeps the ledger honest.
        self.lane(lane)
            .messages_loopback
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_refuse(&self, lane: usize, dst: usize) {
        self.lane(lane)
            .messages_refused
            .fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.node_refused.get(dst) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn sum(&self, field: impl Fn(&LaneTotals) -> &AtomicU64) -> u64 {
        self.lanes
            .iter()
            .map(|l| field(l).load(Ordering::Relaxed))
            .sum()
    }

    /// Messages accepted by [`Router::send`](crate::Router::send).
    pub fn messages_sent(&self) -> u64 {
        self.sum(|l| &l.messages_sent)
    }

    /// Messages that completed their wire delay and were handed to an inbox
    /// (loopback sends skip the wire and are counted in
    /// [`NetStats::messages_loopback`] instead).
    pub fn messages_delivered(&self) -> u64 {
        self.sum(|l| &l.messages_delivered)
    }

    /// Messages lost to fault injection, partitions, crashes, stopped
    /// endpoints, or fabric teardown.
    pub fn messages_dropped(&self) -> u64 {
        self.sum(|l| &l.messages_dropped)
    }

    /// Loopback sends completed without touching the wire.
    pub fn messages_loopback(&self) -> u64 {
        self.sum(|l| &l.messages_loopback)
    }

    /// Sends refused outright (crashed peer); never accepted, so not part
    /// of the sent/delivered/dropped/loopback ledger.
    pub fn messages_refused(&self) -> u64 {
        self.sum(|l| &l.messages_refused)
    }

    /// `sent - delivered - dropped - loopback`: what the ledger says must
    /// still be parked on the wire. Exact once the fabric is quiescent.
    pub fn ledger_in_flight(&self) -> i64 {
        self.messages_sent() as i64
            - self.messages_delivered() as i64
            - self.messages_dropped() as i64
            - self.messages_loopback() as i64
    }

    /// Total payload bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.sum(|l| &l.bytes_sent)
    }

    /// Wire deliveries into `node`'s inbox; 0 if the id is out of range.
    pub fn node_delivered(&self, node: usize) -> u64 {
        self.node_delivered
            .get(node)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Messages destined for `node` that were lost; 0 if out of range.
    pub fn node_dropped(&self, node: usize) -> u64 {
        self.node_dropped
            .get(node)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Sends to `node` refused because a peer was crashed; 0 if out of
    /// range.
    pub fn node_refused(&self, node: usize) -> u64 {
        self.node_refused
            .get(node)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::with_nodes(2);
        s.record_send(0, 10);
        s.record_send(0, 20);
        s.record_deliver(0, 1);
        s.record_drop(0, 0);
        assert_eq!(s.messages_sent(), 2);
        assert_eq!(s.bytes_sent(), 30);
        assert_eq!(s.messages_delivered(), 1);
        assert_eq!(s.messages_dropped(), 1);
        assert_eq!(s.node_delivered(1), 1);
        assert_eq!(s.node_delivered(0), 0);
        assert_eq!(s.node_dropped(0), 1);
        assert_eq!(s.node_dropped(1), 0);
    }

    #[test]
    fn loopback_and_refusals_have_their_own_ledger_lines() {
        let s = NetStats::with_nodes(2);
        s.record_send(0, 8);
        s.record_loopback(0, 0);
        s.record_refuse(0, 1);
        assert_eq!(s.messages_sent(), 1);
        assert_eq!(s.messages_loopback(), 1);
        assert_eq!(s.messages_refused(), 1);
        assert_eq!(s.node_refused(1), 1);
        assert_eq!(s.node_refused(0), 0);
        // Loopback is inside the ledger; the refusal is outside it.
        assert_eq!(s.ledger_in_flight(), 0);
        assert_eq!(s.messages_delivered(), 0);
        assert_eq!(s.messages_dropped(), 0);
    }

    #[test]
    fn out_of_range_node_counts_totals_only() {
        let s = NetStats::default();
        s.record_deliver(0, 7);
        s.record_drop(0, 7);
        assert_eq!(s.messages_delivered(), 1);
        assert_eq!(s.messages_dropped(), 1);
        assert_eq!(s.node_delivered(7), 0);
        assert_eq!(s.node_dropped(7), 0);
    }

    #[test]
    fn lanes_merge_at_read_time() {
        let s = NetStats::with_topology(1, 4);
        for lane in 0..4 {
            s.record_send(lane, 10);
            s.record_deliver(lane, 0);
        }
        // Out-of-range lane indices wrap instead of panicking.
        s.record_send(17, 5);
        assert_eq!(s.messages_sent(), 5);
        assert_eq!(s.bytes_sent(), 45);
        assert_eq!(s.messages_delivered(), 4);
        assert_eq!(s.node_delivered(0), 4);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = std::sync::Arc::new(NetStats::with_topology(1, 4));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(t, 1);
                        s.record_deliver(t, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.messages_sent(), 8000);
        assert_eq!(s.bytes_sent(), 8000);
        assert_eq!(s.messages_delivered(), 8000);
        assert_eq!(s.node_delivered(0), 8000);
    }
}
