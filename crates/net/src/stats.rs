//! Fabric-wide and per-node counters, shared lock-free across router clones.

use std::sync::atomic::{AtomicU64, Ordering};

/// Message and byte counters for a [`Router`](crate::Router).
///
/// Relaxed ordering everywhere: these are monitoring counters, not
/// synchronization. (Per the concurrency guide: counters that no control
/// flow depends on need no happens-before edges.)
///
/// Per-node slots are sized once at fabric construction
/// ([`NetStats::with_nodes`]) and indexed by node id; a default (node-less)
/// stats block still tracks the fabric-wide totals.
#[derive(Debug, Default)]
pub struct NetStats {
    messages_sent: AtomicU64,
    messages_delivered: AtomicU64,
    /// Messages accepted (or already parked) that never reached their
    /// destination: fault-plan drops, partition losses, and messages
    /// addressed to crashed or stopped nodes.
    messages_dropped: AtomicU64,
    /// Loopback sends handed straight to the local inbox — never on the
    /// wire, but accepted and completed, so the ledger
    /// `sent == delivered + dropped + loopback + in-flight` balances.
    messages_loopback: AtomicU64,
    /// Sends refused outright (crashed destination or crashed sender):
    /// `Router::send` returned `false` and nothing entered the fabric.
    /// Deliberately *outside* the sent/delivered/dropped ledger.
    messages_refused: AtomicU64,
    bytes_sent: AtomicU64,
    /// Per-destination delivered counts, indexed by node id.
    node_delivered: Vec<AtomicU64>,
    /// Per-destination dropped counts, indexed by node id.
    node_dropped: Vec<AtomicU64>,
    /// Per-destination refused counts, indexed by node id.
    node_refused: Vec<AtomicU64>,
}

impl NetStats {
    /// Stats block with per-node slots for a fabric of `n_nodes`.
    pub fn with_nodes(n_nodes: usize) -> Self {
        NetStats {
            node_delivered: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            node_dropped: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            node_refused: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            ..NetStats::default()
        }
    }

    pub(crate) fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_deliver(&self, dst: usize) {
        self.messages_delivered.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.node_delivered.get(dst) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_drop(&self, dst: usize) {
        self.messages_dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.node_dropped.get(dst) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_loopback(&self, _dst: usize) {
        // Per-node slots stay wire-only; the total keeps the ledger honest.
        self.messages_loopback.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_refuse(&self, dst: usize) {
        self.messages_refused.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.node_refused.get(dst) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Messages accepted by [`Router::send`](crate::Router::send).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Messages that completed their wire delay and were handed to an inbox
    /// (loopback sends skip the wire and are counted in
    /// [`NetStats::messages_loopback`] instead).
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered.load(Ordering::Relaxed)
    }

    /// Messages lost to fault injection, partitions, crashes, stopped
    /// endpoints, or fabric teardown.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped.load(Ordering::Relaxed)
    }

    /// Loopback sends completed without touching the wire.
    pub fn messages_loopback(&self) -> u64 {
        self.messages_loopback.load(Ordering::Relaxed)
    }

    /// Sends refused outright (crashed peer); never accepted, so not part
    /// of the sent/delivered/dropped/loopback ledger.
    pub fn messages_refused(&self) -> u64 {
        self.messages_refused.load(Ordering::Relaxed)
    }

    /// `sent - delivered - dropped - loopback`: what the ledger says must
    /// still be parked on the wire. Exact once the fabric is quiescent.
    pub fn ledger_in_flight(&self) -> i64 {
        self.messages_sent() as i64
            - self.messages_delivered() as i64
            - self.messages_dropped() as i64
            - self.messages_loopback() as i64
    }

    /// Total payload bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Wire deliveries into `node`'s inbox; 0 if the id is out of range.
    pub fn node_delivered(&self, node: usize) -> u64 {
        self.node_delivered
            .get(node)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Messages destined for `node` that were lost; 0 if out of range.
    pub fn node_dropped(&self, node: usize) -> u64 {
        self.node_dropped
            .get(node)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Sends to `node` refused because a peer was crashed; 0 if out of
    /// range.
    pub fn node_refused(&self, node: usize) -> u64 {
        self.node_refused
            .get(node)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetStats::with_nodes(2);
        s.record_send(10);
        s.record_send(20);
        s.record_deliver(1);
        s.record_drop(0);
        assert_eq!(s.messages_sent(), 2);
        assert_eq!(s.bytes_sent(), 30);
        assert_eq!(s.messages_delivered(), 1);
        assert_eq!(s.messages_dropped(), 1);
        assert_eq!(s.node_delivered(1), 1);
        assert_eq!(s.node_delivered(0), 0);
        assert_eq!(s.node_dropped(0), 1);
        assert_eq!(s.node_dropped(1), 0);
    }

    #[test]
    fn loopback_and_refusals_have_their_own_ledger_lines() {
        let s = NetStats::with_nodes(2);
        s.record_send(8);
        s.record_loopback(0);
        s.record_refuse(1);
        assert_eq!(s.messages_sent(), 1);
        assert_eq!(s.messages_loopback(), 1);
        assert_eq!(s.messages_refused(), 1);
        assert_eq!(s.node_refused(1), 1);
        assert_eq!(s.node_refused(0), 0);
        // Loopback is inside the ledger; the refusal is outside it.
        assert_eq!(s.ledger_in_flight(), 0);
        assert_eq!(s.messages_delivered(), 0);
        assert_eq!(s.messages_dropped(), 0);
    }

    #[test]
    fn out_of_range_node_counts_totals_only() {
        let s = NetStats::default();
        s.record_deliver(7);
        s.record_drop(7);
        assert_eq!(s.messages_delivered(), 1);
        assert_eq!(s.messages_dropped(), 1);
        assert_eq!(s.node_delivered(7), 0);
        assert_eq!(s.node_dropped(7), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = std::sync::Arc::new(NetStats::with_nodes(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(1);
                        s.record_deliver(0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.messages_sent(), 8000);
        assert_eq!(s.bytes_sent(), 8000);
        assert_eq!(s.messages_delivered(), 8000);
        assert_eq!(s.node_delivered(0), 8000);
    }
}
