//! # stash-ingest
//!
//! The live-ingestion subsystem (DESIGN.md §13): a deterministic producer
//! replays the dataset tail from a [`StreamSource`] and pumps it into a
//! cluster through per-owner append queues.
//!
//! Structure of one [`run_stream`] call:
//!
//! * the **producer** (the calling thread) walks the stream's batches
//!   round-robin across blocks, routes each batch to its owner's lane via
//!   [`AppendSink::owner_of`], and passes a per-lane *lag gate* first;
//! * each **lane** is an unbounded queue drained by one worker thread, so
//!   batches of one owner — and therefore of one block — stay strictly
//!   ordered. The worker assigns the per-block `seq` at send time (shed
//!   batches never consume a seq, keeping the sequence contiguous) and
//!   calls [`AppendSink::append`], which blocks until the cluster has
//!   durably applied the batch *and* invalidated every affected summary;
//! * the **lag gate** bounds unacknowledged rows per owner. When an owner
//!   falls behind by more than `lag_budget_rows`, the producer either
//!   waits ([`OverloadPolicy::Block`] — backpressure) or drops the batch
//!   ([`OverloadPolicy::Shed`] — bounded staleness, lossy).
//!
//! The pump is cluster-agnostic: `stash-cluster` provides the real sink
//! (`IngestClient`), and the tests here use an in-memory one.

use stash_data::StreamSource;
use stash_dfs::BlockKey;
use stash_model::Observation;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What to do when an owner's unacknowledged backlog exceeds the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Backpressure: the producer waits for the owner to catch up. The
    /// stream slows down, nothing is lost.
    Block,
    /// Load shedding: the batch is dropped on the floor. The stream keeps
    /// real-time pace at the cost of permanently lost rows.
    Shed,
}

/// Pump configuration.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Max unacknowledged rows per owner before `policy` kicks in.
    pub lag_budget_rows: usize,
    pub policy: OverloadPolicy,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            lag_budget_rows: 4096,
            policy: OverloadPolicy::Block,
        }
    }
}

/// A batch could not be applied (after the sink's own retries/failover).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError(pub String);

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest error: {}", self.0)
    }
}

impl std::error::Error for IngestError {}

/// Where appended batches go. Implementations are expected to block in
/// [`AppendSink::append`] until the batch is durable (the cluster sink
/// retries and fails over internally and only returns once the owner's
/// positive ack — append applied, peers invalidated — arrived).
pub trait AppendSink: Send + Sync {
    /// Which lane (usually: which storage node) serializes this block.
    fn owner_of(&self, block: BlockKey) -> usize;
    /// Apply batch `seq` (0-based, contiguous per block) of this block.
    /// `last` marks the block's final batch: applying it seals the block,
    /// which lets continuous rollups advance their watermark (DESIGN.md
    /// §17). Shed batches are never re-sent, so a shed final batch leaves
    /// the block unsealed — honest lossy semantics.
    fn append(
        &self,
        block: BlockKey,
        seq: u64,
        rows: &[Observation],
        last: bool,
    ) -> Result<(), IngestError>;
}

/// Outcome counters of one [`run_stream`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Rows acknowledged by the sink.
    pub rows_sent: u64,
    pub batches_sent: u64,
    /// Rows dropped by [`OverloadPolicy::Shed`].
    pub rows_shed: u64,
    pub batches_shed: u64,
    /// Batches the sink rejected even after its internal retries; the
    /// block is abandoned (later batches would be out of order).
    pub batches_failed: u64,
    /// Producer time spent blocked on lag gates ([`OverloadPolicy::Block`]).
    pub blocked_ns: u64,
    /// High-water mark of any single owner's unacknowledged rows.
    pub max_lag_rows: usize,
}

/// Unacknowledged-row accounting for one owner (mutex + condvar so
/// [`OverloadPolicy::Block`] can wait without spinning).
struct LagGate {
    lag: Mutex<usize>,
    caught_up: Condvar,
}

impl LagGate {
    fn new() -> Self {
        LagGate {
            lag: Mutex::new(0),
            caught_up: Condvar::new(),
        }
    }

    /// Admit unless over budget; an idle lane always admits (a batch
    /// larger than the whole budget must not deadlock).
    fn try_admit(&self, rows: usize, budget: usize) -> Option<usize> {
        let mut lag = self.lag.lock().unwrap();
        if *lag > 0 && *lag + rows > budget {
            return None;
        }
        *lag += rows;
        Some(*lag)
    }

    /// Wait until the batch fits, then admit. Returns (time blocked, lag
    /// after admission).
    fn admit_blocking(&self, rows: usize, budget: usize) -> (Duration, usize) {
        let start = Instant::now();
        let mut lag = self.lag.lock().unwrap();
        while *lag > 0 && *lag + rows > budget {
            lag = self.caught_up.wait(lag).unwrap();
        }
        *lag += rows;
        (start.elapsed(), *lag)
    }

    fn release(&self, rows: usize) {
        let mut lag = self.lag.lock().unwrap();
        *lag -= rows;
        self.caught_up.notify_all();
    }
}

/// Per-worker tallies, merged into [`IngestStats`] at join.
#[derive(Default)]
struct LaneStats {
    rows_sent: u64,
    batches_sent: u64,
    batches_failed: u64,
}

/// Drive a whole stream into the sink. Returns once every admitted batch
/// has been acknowledged (or failed terminally) — so when this returns
/// under [`OverloadPolicy::Block`], the cluster holds the complete stream
/// and no cache anywhere still serves pre-stream summaries as fresh.
pub fn run_stream(
    source: &StreamSource,
    sink: Arc<dyn AppendSink>,
    config: IngestConfig,
) -> IngestStats {
    assert!(config.lag_budget_rows > 0, "lag budget must be positive");
    // One lane per distinct owner among the stream's blocks.
    let owners: HashSet<usize> = source
        .blocks()
        .iter()
        .map(|&(geohash, day)| sink.owner_of(BlockKey { geohash, day }))
        .collect();
    type Lane = (
        crossbeam::channel::Sender<(BlockKey, Vec<Observation>, bool)>,
        Arc<LagGate>,
    );
    let mut lanes: HashMap<usize, Lane> = HashMap::new();
    let mut workers = Vec::new();
    for owner in owners {
        let (tx, rx) = crossbeam::channel::unbounded::<(BlockKey, Vec<Observation>, bool)>();
        let gate = Arc::new(LagGate::new());
        lanes.insert(owner, (tx, Arc::clone(&gate)));
        let sink = Arc::clone(&sink);
        workers.push(
            std::thread::Builder::new()
                .name(format!("stash-ingest-{owner}"))
                .spawn(move || {
                    let mut stats = LaneStats::default();
                    // Per-block seq counters live here — assigned only to
                    // batches that made it past the gate, so shedding
                    // leaves no holes in the sequence.
                    let mut seqs: HashMap<BlockKey, u64> = HashMap::new();
                    let mut dead: HashSet<BlockKey> = HashSet::new();
                    while let Ok((block, rows, last)) = rx.recv() {
                        let n = rows.len();
                        if !dead.contains(&block) {
                            let seq = seqs.entry(block).or_insert(0);
                            match sink.append(block, *seq, &rows, last) {
                                Ok(()) => {
                                    *seq += 1;
                                    stats.rows_sent += n as u64;
                                    stats.batches_sent += 1;
                                }
                                Err(_) => {
                                    // Later batches of this block would be
                                    // out of order; abandon the block.
                                    dead.insert(block);
                                    stats.batches_failed += 1;
                                }
                            }
                        } else {
                            stats.batches_failed += 1;
                        }
                        gate.release(n);
                    }
                    stats
                })
                .expect("spawn ingest lane"),
        );
    }

    let mut stats = IngestStats::default();
    for batch in source.batches() {
        let block = BlockKey {
            geohash: batch.block,
            day: batch.day,
        };
        let (tx, gate) = &lanes[&sink.owner_of(block)];
        let n = batch.rows.len();
        let admitted_lag = match config.policy {
            OverloadPolicy::Block => {
                let (blocked, lag) = gate.admit_blocking(n, config.lag_budget_rows);
                stats.blocked_ns += blocked.as_nanos() as u64;
                lag
            }
            OverloadPolicy::Shed => match gate.try_admit(n, config.lag_budget_rows) {
                Some(lag) => lag,
                None => {
                    stats.rows_shed += n as u64;
                    stats.batches_shed += 1;
                    continue;
                }
            },
        };
        stats.max_lag_rows = stats.max_lag_rows.max(admitted_lag);
        tx.send((block, batch.rows, batch.last))
            .expect("lane worker alive");
    }
    drop(lanes); // close every lane; workers drain and exit
    for w in workers {
        let lane = w.join().expect("ingest lane panicked");
        stats.rows_sent += lane.rows_sent;
        stats.batches_sent += lane.batches_sent;
        stats.batches_failed += lane.batches_failed;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_data::{GeneratorConfig, NamGenerator, StreamConfig};
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;

    /// In-memory sink: applies the `BlockSource::append` seq contract and
    /// optionally sleeps per batch to simulate a slow cluster.
    struct MemSink {
        n_owners: usize,
        delay: Duration,
        applied: Mutex<HashMap<BlockKey, (u64, Vec<Observation>)>>,
        sealed: Mutex<HashSet<BlockKey>>,
    }

    impl MemSink {
        fn new(n_owners: usize, delay: Duration) -> Self {
            MemSink {
                n_owners,
                delay,
                applied: Mutex::new(HashMap::new()),
                sealed: Mutex::new(HashSet::new()),
            }
        }

        fn rows_of(&self, block: BlockKey) -> Vec<Observation> {
            self.applied
                .lock()
                .unwrap()
                .get(&block)
                .map(|(_, rows)| rows.clone())
                .unwrap_or_default()
        }
    }

    impl AppendSink for MemSink {
        fn owner_of(&self, block: BlockKey) -> usize {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            block.geohash.hash(&mut h);
            (h.finish() % self.n_owners as u64) as usize
        }

        fn append(
            &self,
            block: BlockKey,
            seq: u64,
            rows: &[Observation],
            last: bool,
        ) -> Result<(), IngestError> {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            let mut applied = self.applied.lock().unwrap();
            let entry = applied.entry(block).or_insert_with(|| (0, Vec::new()));
            if seq != entry.0 {
                return Err(IngestError(format!(
                    "seq {seq} out of order (expected {})",
                    entry.0
                )));
            }
            entry.0 += 1;
            entry.1.extend(rows.iter().cloned());
            if last {
                self.sealed.lock().unwrap().insert(block);
            }
            Ok(())
        }
    }

    fn stream(batch_rows: usize) -> StreamSource {
        let generator = NamGenerator::new(GeneratorConfig {
            seed: 5,
            obs_per_deg2_per_day: 60.0,
            max_obs_per_block: 5_000,
            value_quantum: 1.0 / 64.0,
        });
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let blocks = ["9q8", "9q9", "9qb", "9qc"]
            .iter()
            .map(|g| (Geohash::from_str(g).unwrap(), day))
            .collect();
        StreamSource::new(
            generator,
            blocks,
            StreamConfig {
                base_fraction: 0.5,
                batch_rows,
            },
        )
    }

    #[test]
    fn block_policy_delivers_the_whole_stream_in_order() {
        let src = stream(128);
        let sink = Arc::new(MemSink::new(3, Duration::ZERO));
        let stats = run_stream(
            &src,
            Arc::clone(&sink) as Arc<dyn AppendSink>,
            IngestConfig {
                lag_budget_rows: 512,
                policy: OverloadPolicy::Block,
            },
        );
        assert_eq!(stats.rows_sent as usize, src.total_rows());
        assert_eq!(stats.rows_shed, 0);
        assert_eq!(stats.batches_failed, 0);
        for &(geohash, day) in src.blocks() {
            let got = sink.rows_of(BlockKey { geohash, day });
            assert_eq!(got, src.generator().tail_rows(geohash, day, 0.5));
        }
        assert_eq!(
            sink.sealed.lock().unwrap().len(),
            src.blocks().len(),
            "a lossless stream seals every block"
        );
    }

    #[test]
    fn shed_policy_drops_under_lag_but_keeps_seqs_contiguous() {
        let src = stream(64);
        // One slow owner lane and a budget below two batches forces sheds.
        let sink = Arc::new(MemSink::new(1, Duration::from_millis(2)));
        let stats = run_stream(
            &src,
            Arc::clone(&sink) as Arc<dyn AppendSink>,
            IngestConfig {
                lag_budget_rows: 100,
                policy: OverloadPolicy::Shed,
            },
        );
        assert!(stats.rows_shed > 0, "slow sink must shed");
        assert_eq!(
            stats.rows_sent + stats.rows_shed,
            src.total_rows() as u64,
            "every row is either delivered or accounted as shed"
        );
        assert_eq!(stats.batches_failed, 0, "sheds must not break seq order");
        let delivered: usize = src
            .blocks()
            .iter()
            .map(|&(geohash, day)| sink.rows_of(BlockKey { geohash, day }).len())
            .sum();
        assert_eq!(delivered as u64, stats.rows_sent);
    }

    #[test]
    fn block_policy_backpressures_instead_of_shedding() {
        let src = stream(64);
        let sink = Arc::new(MemSink::new(1, Duration::from_millis(1)));
        let stats = run_stream(
            &src,
            Arc::clone(&sink) as Arc<dyn AppendSink>,
            IngestConfig {
                lag_budget_rows: 100,
                policy: OverloadPolicy::Block,
            },
        );
        assert_eq!(stats.rows_shed, 0);
        assert_eq!(stats.rows_sent as usize, src.total_rows());
        assert!(stats.blocked_ns > 0, "tight budget must block the producer");
        assert!(
            stats.max_lag_rows <= 100 + 64,
            "lag stays within budget plus one batch"
        );
    }
}
