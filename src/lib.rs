//! # stash
//!
//! A from-scratch Rust reproduction of **STASH: Fast Hierarchical
//! Aggregation Queries for Effective Visual Spatiotemporal Explorations**
//! (Mitra, Khandelwal, Pallickara & Pallickara, IEEE CLUSTER 2019).
//!
//! STASH is a distributed in-memory caching middleware between a
//! visualization front-end and a distributed file system: it caches
//! *aggregated* query results ("Cells") in a hierarchical multi-resolution
//! graph dispersed over a zero-hop DHT, reuses them across overlapping /
//! nested / adjacent queries, and absorbs hotspots by replicating the
//! hottest sub-graphs ("Cliques") to antipodal helper nodes.
//!
//! This facade re-exports the workspace crates:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`geo`] | geohash codec, bbox math, temporal hierarchy |
//! | [`flat`] | flat word-encoding primitives shared by frames and wire partials |
//! | [`model`] | Cells, summary statistics, levels, query types |
//! | [`data`] | synthetic NAM-like dataset + workload generators |
//! | [`net`] | simulated cluster fabric (delay-queue router) |
//! | [`dfs`] | Galileo-like zero-hop-DHT block store |
//! | [`core`] | the STASH graph, PLM, freshness, cliques, routing |
//! | [`cluster`] | the full simulated deployment + client API |
//! | [`elastic`] | the ElasticSearch-like comparison baseline |
//!
//! ## Quickstart
//!
//! ```
//! use stash::cluster::{ClusterConfig, SimCluster};
//! use stash::model::AggQuery;
//! use stash::geo::{BBox, TemporalRes, TimeRange};
//!
//! // Boot a small simulated cluster with STASH enabled. The builder
//! // validates the configuration and returns a typed `ConfigError` for
//! // anything inconsistent.
//! let cluster = SimCluster::new(
//!     ClusterConfig::builder()
//!         .n_nodes(2)
//!         .disk(stash::dfs::DiskModel::free()) // no modeled disk in doctests
//!         .build()
//!         .unwrap(),
//! );
//! let client = cluster.client();
//!
//! // One front-end interaction = one aggregation query.
//! let query = AggQuery::new(
//!     BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2), // a county
//!     TimeRange::whole_day(2015, 2, 2),
//!     4,                     // spatial resolution: geohash length 4
//!     TemporalRes::Day,      // temporal resolution
//! );
//! let cold = client.query(&query).run().unwrap();
//! assert!(cold.misses > 0); // nothing cached yet
//!
//! let warm = client.query(&query).run().unwrap();
//! assert_eq!(warm.misses, 0); // served entirely from STASH
//! assert_eq!(warm.total_count(), cold.total_count());
//! cluster.shutdown();
//! ```

pub use stash_cluster as cluster;
pub use stash_core as core;
pub use stash_data as data;
pub use stash_dfs as dfs;
pub use stash_elastic as elastic;
pub use stash_flat as flat;
pub use stash_geo as geo;
pub use stash_model as model;
pub use stash_net as net;

/// Crate version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
